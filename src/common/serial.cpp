#include "common/serial.h"

#include <bit>
#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/failpoint.h"

namespace sns {
namespace serial {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

Status ByteSource::ReadExact(void* data, size_t size) {
  auto* out = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    StatusOr<size_t> got = ReadSome(out + done, size - done);
    if (!got.ok()) return got.status();
    if (got.value() == 0) {
      return Status::DataLoss("unexpected end of stream (wanted " +
                              std::to_string(size) + " bytes, got " +
                              std::to_string(done) + ")");
    }
    done += got.value();
  }
  return Status::OK();
}

StatusOr<size_t> StringSource::ReadSome(void* data, size_t size) {
  const size_t n = std::min(size, remaining());
  std::memcpy(data, data_.data() + pos_, n);
  pos_ += n;
  return n;
}

StatusOr<FileSink> FileSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open for writing", path));
  }
  return FileSink(file, path);
}

FileSink& FileSink::operator=(FileSink&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Write(const void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("sink is closed");
  // Injected disk faults: "serial.file_sink_write" fails cleanly before a
  // byte lands (ENOSPC at the start of a write); "..._short_write" commits
  // the first half and then fails — the torn-write shape that leaves a
  // truncated journal record on disk.
  if (SNS_FAILPOINT("serial.file_sink_write")) {
    return failpoint::InjectedFailure("serial.file_sink_write");
  }
  if (SNS_FAILPOINT("serial.file_sink_short_write")) {
    const size_t half = size / 2;
    if (half > 0 && std::fwrite(data, 1, half, file_) != half) {
      return Status::IOError(ErrnoMessage("write failed", path_));
    }
    std::fflush(file_);
    return failpoint::InjectedFailure("serial.file_sink_short_write");
  }
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IOError(ErrnoMessage("write failed", path_));
  }
  return Status::OK();
}

Status FileSink::Flush(bool sync_to_disk) {
  if (file_ == nullptr) return Status::FailedPrecondition("sink is closed");
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  if (sync_to_disk && ::fsync(::fileno(file_)) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed", path_));
  }
  return Status::OK();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError(ErrnoMessage("close failed", path_));
  return Status::OK();
}

StatusOr<FileSource> FileSource::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open for reading", path));
  }
  return FileSource(file, path);
}

FileSource& FileSource::operator=(FileSource&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<size_t> FileSource::ReadSome(void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("source is closed");
  const size_t n = std::fread(data, 1, size, file_);
  if (n < size && std::ferror(file_) != 0) {
    return Status::IOError(ErrnoMessage("read failed", path_));
  }
  return n;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  auto source = FileSource::Open(path);
  if (!source.ok()) return source.status();
  std::string out;
  char buffer[1 << 16];
  while (true) {
    StatusOr<size_t> got = source.value().ReadSome(buffer, sizeof(buffer));
    if (!got.ok()) return got.status();
    if (got.value() == 0) break;
    out.append(buffer, got.value());
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  auto sink = FileSink::Open(path);
  if (!sink.ok()) return sink.status();
  SNS_RETURN_IF_ERROR(sink.value().Write(data.data(), data.size()));
  return sink.value().Close();
}

void Writer::U32(uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  Bytes(b, sizeof(b));
}

void Writer::U64(uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  Bytes(b, sizeof(b));
}

void Writer::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void Writer::Bytes(const void* data, size_t size) {
  if (!status_.ok()) return;
  status_ = sink_->Write(data, size);
}

void Writer::Str(std::string_view s) {
  U64(s.size());
  Bytes(s.data(), s.size());
}

Status Reader::U32(uint32_t* v) {
  unsigned char b[4];
  SNS_RETURN_IF_ERROR(Bytes(b, sizeof(b)));
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(b[i]) << (8 * i);
  *v = out;
  return Status::OK();
}

Status Reader::U64(uint64_t* v) {
  unsigned char b[8];
  SNS_RETURN_IF_ERROR(Bytes(b, sizeof(b)));
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(b[i]) << (8 * i);
  *v = out;
  return Status::OK();
}

Status Reader::I32(int32_t* v) {
  uint32_t u = 0;
  SNS_RETURN_IF_ERROR(U32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status Reader::I64(int64_t* v) {
  uint64_t u = 0;
  SNS_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Reader::F64(double* v) {
  uint64_t u = 0;
  SNS_RETURN_IF_ERROR(U64(&u));
  *v = std::bit_cast<double>(u);
  return Status::OK();
}

Status Reader::Bytes(void* data, size_t size) {
  if (!status_.ok()) return status_;
  status_ = source_->ReadExact(data, size);
  return status_;
}

Status Reader::Str(std::string* s, size_t max_size) {
  uint64_t size = 0;
  SNS_RETURN_IF_ERROR(U64(&size));
  if (size > max_size) {
    status_ = Status::DataLoss("string length " + std::to_string(size) +
                               " exceeds limit " + std::to_string(max_size));
    return status_;
  }
  s->resize(static_cast<size_t>(size));
  return Bytes(s->data(), s->size());
}

}  // namespace serial
}  // namespace sns
