// Mailbox — a bounded multi-producer / single-consumer task queue.
//
// One mailbox feeds one worker shard. Producers (service entry points on
// caller threads) push tasks; the shard's thread pops and runs them in FIFO
// order, which is what makes per-stream execution order equal to enqueue
// order — the backbone of the sharded runtime's determinism guarantee.
//
// The queue is bounded by a task-count capacity. A full mailbox either
// blocks the producer (BackpressurePolicy::kBlock) or refuses the push
// (kReject); the caller picks per push. The mailbox also tracks tasks that
// were popped but are still executing, so WaitIdle() — the primitive behind
// SnsService::Drain() — waits for true quiescence, not just an empty queue.
//
// Mutex + condition variables rather than a lock-free ring: pushes are
// per-batch (not per-tuple), so queue traffic is orders of magnitude below
// the engine's event rate, and blocking backpressure needs a condvar anyway.

#ifndef SLICENSTITCH_RUNTIME_MAILBOX_H_
#define SLICENSTITCH_RUNTIME_MAILBOX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "runtime/task.h"
#include "telemetry/metrics_registry.h"

namespace sns {

class Mailbox {
 public:
  enum class PushResult {
    kOk,        // Enqueued.
    kFull,      // Refused: at capacity (non-blocking push only).
    kClosed,    // Refused: the mailbox is shut down.
    kTimedOut,  // Refused: still full when the push deadline expired.
  };

  using Deadline = std::chrono::steady_clock::time_point;

  /// `metrics`, when non-null, receives the mailbox traffic tallies
  /// (pushes, blocked/rejected/deadline-exceeded refusals, queue depth).
  /// The pointee must outlive the mailbox; null disables instrumentation.
  explicit Mailbox(int64_t capacity,
                   telemetry::ShardMetrics* metrics = nullptr)
      : capacity_(capacity), metrics_(metrics) {
    SNS_CHECK(capacity >= 1);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a task. With block = true a full mailbox suspends the caller
  /// until the consumer makes room (kBlock backpressure); with block = false
  /// it returns kFull immediately (kReject backpressure). A `deadline`
  /// bounds the blocking wait: a mailbox still full at the deadline refuses
  /// with kTimedOut and enqueues nothing. Tasks pushed with block = true
  /// and no deadline are only ever refused by Close().
  PushResult Push(Task task, bool block,
                  std::optional<Deadline> deadline = std::nullopt) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Deterministic queue-wedge injection: the mailbox reports itself
      // full without touching the queue, exercising backpressure and
      // deadline paths without needing a truly wedged consumer.
      if (SNS_FAILPOINT("mailbox.push")) {
        const bool timed_out = block && deadline.has_value();
        if (metrics_ != nullptr) {
          (timed_out ? metrics_->mailbox_deadline_exceeded
                     : metrics_->mailbox_rejected)
              .Add(1);
        }
        return timed_out ? PushResult::kTimedOut : PushResult::kFull;
      }
      const auto has_room = [this] {
        return closed_ || static_cast<int64_t>(queue_.size()) < capacity_;
      };
      if (block) {
        if (metrics_ != nullptr && !has_room()) {
          metrics_->mailbox_blocked.Add(1);
        }
        if (deadline.has_value()) {
          if (!not_full_.wait_until(lock, *deadline, has_room)) {
            if (metrics_ != nullptr) metrics_->mailbox_deadline_exceeded.Add(1);
            return PushResult::kTimedOut;
          }
        } else {
          not_full_.wait(lock, has_room);
        }
      }
      if (closed_) return PushResult::kClosed;
      if (static_cast<int64_t>(queue_.size()) >= capacity_) {
        if (metrics_ != nullptr) metrics_->mailbox_rejected.Add(1);
        return PushResult::kFull;
      }
      queue_.push_back(std::move(task));
      ++unfinished_;
      if (metrics_ != nullptr) {
        metrics_->mailbox_pushes.Add(1);
        metrics_->queue_depth.Add(1);
      }
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Dequeues the next task, blocking while the mailbox is open and empty.
  /// Returns false once the mailbox is closed *and* drained — the consumer's
  /// signal to exit. Every task popped true must be matched by TaskDone().
  bool Pop(Task& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // Closed and drained.
    out = std::move(queue_.front());
    queue_.pop_front();
    if (metrics_ != nullptr) metrics_->queue_depth.Add(-1);
    not_full_.notify_one();
    return true;
  }

  /// Consumer acknowledgement that a popped task finished executing; wakes
  /// WaitIdle() when the mailbox reaches quiescence.
  void TaskDone() {
    std::lock_guard<std::mutex> lock(mu_);
    SNS_CHECK(unfinished_ > 0);
    if (--unfinished_ == 0) idle_.notify_all();
  }

  /// Blocks until every pushed task has finished executing (queue empty and
  /// nothing in flight). Producers pushing concurrently can extend the wait;
  /// quiescence is only meaningful once they pause.
  void WaitIdle() const {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return unfinished_ == 0; });
  }

  /// Shuts the mailbox: subsequent pushes fail with kClosed, blocked
  /// producers wake and fail, and Pop() drains what was accepted before
  /// returning false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Tasks currently queued (excludes the one executing, if any).
  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  telemetry::ShardMetrics* const metrics_;  // Null when telemetry is off.
  mutable std::mutex mu_;
  std::condition_variable not_full_;   // Producers waiting on capacity.
  std::condition_variable not_empty_;  // The consumer waiting on work.
  mutable std::condition_variable idle_;  // Drainers waiting on quiescence.
  std::deque<Task> queue_;   // Guarded by mu_.
  int64_t unfinished_ = 0;   // Queued + executing; guarded by mu_.
  bool closed_ = false;      // Guarded by mu_.
};

}  // namespace sns

#endif  // SLICENSTITCH_RUNTIME_MAILBOX_H_
