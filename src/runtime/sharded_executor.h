// ShardedExecutor — a fixed pool of worker shards with pinned stream
// assignment.
//
// The executor owns S WorkerShards. Streams are assigned a shard once, at
// registration (round-robin for balance), and keep it for life: pinning is
// what turns shard-local FIFO execution into a per-stream total order, and
// therefore into factor state bitwise identical to synchronous execution.
//
// Lifecycle: Drain() flushes every mailbox (all accepted tasks executed);
// Shutdown() drains, closes the mailboxes, and joins the threads. The
// executor is heap-allocated by SnsService so the service stays movable
// while shard threads hold stable pointers into the runtime.

#ifndef SLICENSTITCH_RUNTIME_SHARDED_EXECUTOR_H_
#define SLICENSTITCH_RUNTIME_SHARDED_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.h"
#include "runtime/mailbox.h"
#include "runtime/task.h"
#include "runtime/worker_shard.h"
#include "telemetry/metrics_registry.h"

namespace sns {

class ShardedExecutor {
 public:
  /// Spawns `num_shards` worker threads, each behind a mailbox bounded at
  /// `queue_capacity` tasks. `metrics`, when non-null, must expose at least
  /// `num_shards` shard domains (outliving the executor); shard i records
  /// into metrics->shard(i). Null disables instrumentation.
  ShardedExecutor(int num_shards, int64_t queue_capacity,
                  telemetry::MetricsRegistry* metrics = nullptr);

  /// Joins all shard threads (Shutdown() if the owner did not call it).
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Picks the shard for a newly registered stream: round-robin over the
  /// pool, so K streams spread evenly across S shards. The assignment is
  /// permanent for the stream's lifetime.
  int AssignShard() {
    const int shard = next_shard_;
    next_shard_ = (next_shard_ + 1) % num_shards();
    return shard;
  }

  /// Enqueues a task onto one shard. Semantics of `block`, `deadline`, and
  /// the result are Mailbox::Push's.
  Mailbox::PushResult Submit(
      int shard, Task task, bool block,
      std::optional<Mailbox::Deadline> deadline = std::nullopt) {
    SNS_CHECK(shard >= 0 && shard < num_shards());
    return shards_[static_cast<size_t>(shard)]->Submit(std::move(task), block,
                                                       deadline);
  }

  /// Blocks until every accepted task on every shard has executed.
  void Drain() const;

  /// Blocks until every accepted task on one shard has executed.
  void DrainShard(int shard) const {
    SNS_CHECK(shard >= 0 && shard < num_shards());
    shards_[static_cast<size_t>(shard)]->Drain();
  }

  /// Drains, stops accepting work, and joins every shard thread.
  /// Idempotent; after Shutdown, Submit returns kClosed.
  void Shutdown();

 private:
  std::vector<std::unique_ptr<WorkerShard>> shards_;
  int next_shard_ = 0;  // Guarded by the service's registry lock.
};

}  // namespace sns

#endif  // SLICENSTITCH_RUNTIME_SHARDED_EXECUTOR_H_
