#include "runtime/sharded_executor.h"

namespace sns {

ShardedExecutor::ShardedExecutor(int num_shards, int64_t queue_capacity,
                                 telemetry::MetricsRegistry* metrics) {
  SNS_CHECK(num_shards >= 1);
  SNS_CHECK(metrics == nullptr || metrics->num_shards() >= num_shards);
  SNS_CHECK(queue_capacity >= 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<WorkerShard>(
        i, queue_capacity, metrics != nullptr ? &metrics->shard(i) : nullptr));
  }
}

ShardedExecutor::~ShardedExecutor() { Shutdown(); }

void ShardedExecutor::Drain() const {
  for (const auto& shard : shards_) shard->Drain();
}

void ShardedExecutor::Shutdown() {
  // Flush accepted work before closing so in-flight tickets complete with
  // their real status rather than being abandoned.
  Drain();
  for (auto& shard : shards_) shard->Shutdown();
}

}  // namespace sns
