// Ticket — a lightweight completion token for asynchronous service calls.
//
// IngestAsync / AdvanceToAsync hand the caller a Ticket immediately; the
// operation itself runs later on the stream's owning worker shard. The
// ticket is a shared_ptr onto a small completion record the shard fills in:
// callers may Wait() for the Status, poll done(), or drop the ticket
// entirely (fire-and-forget — completion state is reference counted, so a
// dropped ticket never dangles).
//
// Tickets also carry the per-stream *sequence token* assigned at issue
// time: tickets of one stream are numbered 1, 2, 3… in the order their
// operations are applied — on the owning shard, or directly on the caller
// in the inline (shards = 0) configuration — and any query issued after a
// ticket observes that ticket's operation (queries ride the same FIFO
// mailbox). Operations that never enter the stream's order — rejected
// under BackpressurePolicy::kReject, submitted after Shutdown, or
// addressed to an unknown stream — complete immediately with a non-OK
// status and sequence 0.

#ifndef SLICENSTITCH_RUNTIME_TICKET_H_
#define SLICENSTITCH_RUNTIME_TICKET_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/status.h"

namespace sns {

namespace internal {

/// Shared completion record behind a Ticket. The runtime completes it
/// exactly once; any number of threads may wait on it.
class TicketRecord {
 public:
  TicketRecord() = default;
  explicit TicketRecord(uint64_t sequence) : sequence_(sequence) {}

  /// Marks the operation finished. Called exactly once, by the worker shard
  /// (or inline for operations that never enqueue).
  void Complete(Status status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      SNS_CHECK(!done_);
      status_ = std::move(status);
      done_ = true;
    }
    cv_.notify_all();
  }

  uint64_t sequence() const { return sequence_; }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  Status Wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_; });
    return status_;
  }

  /// Bounded wait: the operation's Status if it completed within `timeout`,
  /// else kDeadlineExceeded. The operation itself is unaffected — it will
  /// still execute and can be waited on again.
  Status WaitFor(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [this] { return done_; })) {
      return Status::DeadlineExceeded(
          "operation still pending after " + std::to_string(timeout.count()) +
          " ms");
    }
    return status_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool done_ = false;       // Guarded by mu_.
  Status status_;           // Guarded by mu_; final once done_.
  uint64_t sequence_ = 0;   // Written before the ticket is shared.
};

}  // namespace internal

/// Completion token of one asynchronous service operation. Copyable and
/// cheap to pass around; default-constructed tickets are empty (valid() is
/// false) and must not be waited on.
class Ticket {
 public:
  Ticket() = default;

  /// An already-completed ticket carrying no sequence — issue-time
  /// failures (rejection, shutdown, unknown stream).
  static Ticket Completed(Status status) {
    auto record = std::make_shared<internal::TicketRecord>();
    record->Complete(std::move(status));
    return Ticket(std::move(record));
  }

  /// True if the ticket tracks an operation (empty tickets carry nothing).
  bool valid() const { return record_ != nullptr; }

  /// True once the operation has been applied (or rejected).
  bool done() const {
    SNS_CHECK(record_ != nullptr);
    return record_->done();
  }

  /// Blocks until the operation completes and returns its Status. Safe to
  /// call from any number of threads, repeatedly.
  Status Wait() const {
    SNS_CHECK(record_ != nullptr);
    return record_->Wait();
  }

  /// Bounded Wait: kDeadlineExceeded if the operation is still pending
  /// after `timeout`. A timed-out WaitFor does NOT cancel the operation —
  /// it will still apply in order, and Wait()/WaitFor() may be retried.
  Status WaitFor(std::chrono::milliseconds timeout) const {
    SNS_CHECK(record_ != nullptr);
    return record_->WaitFor(timeout);
  }

  /// The per-stream sequence token, assigned in application order starting
  /// at 1 (in the inline configuration too — the surfaces behave
  /// identically). Zero for operations that never entered the stream's
  /// order: rejected, submitted after shutdown, or unknown stream.
  uint64_t sequence() const {
    SNS_CHECK(record_ != nullptr);
    return record_->sequence();
  }

 private:
  friend class SnsService;
  explicit Ticket(std::shared_ptr<internal::TicketRecord> record)
      : record_(std::move(record)) {}

  std::shared_ptr<internal::TicketRecord> record_;
};

}  // namespace sns

#endif  // SLICENSTITCH_RUNTIME_TICKET_H_
