// WorkerShard — one runtime thread draining one mailbox in FIFO order.
//
// A shard owns a disjoint subset of a service's streams: every operation on
// a stream (ingest, advance, query hop) executes on the owning shard's
// thread, so per-stream state needs no locking and per-stream order equals
// enqueue order. Shards never touch each other's streams — cross-shard
// parallelism is free because the engine is single-writer by design.

#ifndef SLICENSTITCH_RUNTIME_WORKER_SHARD_H_
#define SLICENSTITCH_RUNTIME_WORKER_SHARD_H_

#include <cstdint>
#include <optional>
#include <thread>

#include "runtime/mailbox.h"
#include "runtime/task.h"
#include "telemetry/metrics_registry.h"

namespace sns {

class WorkerShard {
 public:
  /// Spawns the shard thread, which immediately starts draining the mailbox.
  /// `metrics`, when non-null, receives this shard's mailbox tallies and
  /// per-task apply-time histogram; it must outlive the shard.
  WorkerShard(int index, int64_t queue_capacity,
              telemetry::ShardMetrics* metrics = nullptr);

  /// Joins the thread (running Shutdown() if the owner did not).
  ~WorkerShard();

  WorkerShard(const WorkerShard&) = delete;
  WorkerShard& operator=(const WorkerShard&) = delete;

  /// Enqueues a task for this shard's thread. Semantics of `block`,
  /// `deadline`, and the result are Mailbox::Push's.
  Mailbox::PushResult Submit(
      Task task, bool block,
      std::optional<Mailbox::Deadline> deadline = std::nullopt) {
    return mailbox_.Push(std::move(task), block, deadline);
  }

  /// Blocks until every accepted task has executed (mailbox quiescent).
  void Drain() const { mailbox_.WaitIdle(); }

  /// Stops accepting tasks, runs everything already accepted, and joins the
  /// thread. Idempotent; after Shutdown, Submit returns kClosed.
  void Shutdown();

  int index() const { return index_; }

 private:
  void Run();

  const int index_;
  telemetry::ShardMetrics* const metrics_;  // Null when telemetry is off.
  Mailbox mailbox_;
  std::thread thread_;
};

}  // namespace sns

#endif  // SLICENSTITCH_RUNTIME_WORKER_SHARD_H_
