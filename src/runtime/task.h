// Task — a move-only, type-erased `void()` callable.
//
// The runtime's mailboxes carry closures that own their payload (a tuple
// batch, a ticket's shared completion state, a query reply slot), so the
// callable type must support move-only captures — which std::function's
// copyability requirement forbids (std::move_only_function is C++23). One
// heap allocation per task; the runtime enqueues one task per batch or
// query, never per tuple, so this is far off the numeric hot path.

#ifndef SLICENSTITCH_RUNTIME_TASK_H_
#define SLICENSTITCH_RUNTIME_TASK_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace sns {

/// Move-only owning wrapper of an arbitrary `void()` callable.
class Task {
 public:
  Task() = default;

  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<Fn>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<Fn>&>>>
  Task(Fn&& fn)  // NOLINT: implicit by design, mirrors std::function.
      : impl_(std::make_unique<Model<std::decay_t<Fn>>>(
            std::forward<Fn>(fn))) {}

  Task(Task&&) = default;
  Task& operator=(Task&&) = default;

  /// True if the task holds a callable.
  explicit operator bool() const { return impl_ != nullptr; }

  /// Runs the callable. The task must hold one.
  void operator()() { impl_->Run(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void Run() = 0;
  };

  template <typename Fn>
  struct Model final : Concept {
    explicit Model(Fn f) : fn(std::move(f)) {}
    void Run() override { fn(); }
    Fn fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace sns

#endif  // SLICENSTITCH_RUNTIME_TASK_H_
