#include "runtime/worker_shard.h"

#include <utility>

#include "telemetry/scoped_timer.h"

namespace sns {

WorkerShard::WorkerShard(int index, int64_t queue_capacity,
                         telemetry::ShardMetrics* metrics)
    : index_(index),
      metrics_(metrics),
      mailbox_(queue_capacity, metrics),
      thread_([this] { Run(); }) {}

WorkerShard::~WorkerShard() { Shutdown(); }

void WorkerShard::Shutdown() {
  mailbox_.Close();
  if (thread_.joinable()) thread_.join();
}

void WorkerShard::Run() {
  Task task;
  while (mailbox_.Pop(task)) {
    if (metrics_ != nullptr) {
      const int64_t start_ns = telemetry::MonotonicNanos();
      task();
      metrics_->apply_ns.Record(telemetry::MonotonicNanos() - start_ns);
      metrics_->tasks_executed.Add(1);
    } else {
      task();
    }
    task = Task();  // Release captures before acknowledging completion:
                    // after TaskDone a drained caller may free what the
                    // closure captured (e.g. during stream removal).
    mailbox_.TaskDone();
  }
}

}  // namespace sns
