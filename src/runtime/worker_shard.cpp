#include "runtime/worker_shard.h"

#include <utility>

namespace sns {

WorkerShard::WorkerShard(int index, int64_t queue_capacity)
    : index_(index),
      mailbox_(queue_capacity),
      thread_([this] { Run(); }) {}

WorkerShard::~WorkerShard() { Shutdown(); }

void WorkerShard::Shutdown() {
  mailbox_.Close();
  if (thread_.joinable()) thread_.join();
}

void WorkerShard::Run() {
  Task task;
  while (mailbox_.Pop(task)) {
    task();
    task = Task();  // Release captures before acknowledging completion:
                    // after TaskDone a drained caller may free what the
                    // closure captured (e.g. during stream removal).
    mailbox_.TaskDone();
  }
}

}  // namespace sns
