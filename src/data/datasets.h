// Dataset presets mirroring the paper's four real-world tensors (Table II)
// with the default hyperparameters of Table III.
//
// Mode sizes, periods, time units, θ and η match the paper exactly; event
// counts are scaled down (see DESIGN.md "Dataset substitution") so every
// benchmark finishes in minutes. The generated streams span
// (1 + kLiveWindows)·W·T time units: one window span of warm-up (factors are
// then initialized with ALS, §VI-A) plus the paper's 5·W·T of live events.

#ifndef SLICENSTITCH_DATA_DATASETS_H_
#define SLICENSTITCH_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "data/synthetic.h"

namespace sns {

/// Live phase length in window spans (the paper processes events during
/// 5·W·T after initialization).
inline constexpr int kLiveWindows = 5;

/// Everything needed to run one paper experiment on one dataset.
struct DatasetSpec {
  std::string name;        // Identifier, e.g. "taxi".
  std::string paper_name;  // Display name, e.g. "New York Taxi".
  /// Stream generator configuration (spans (1+kLiveWindows)·W·T).
  SyntheticStreamConfig stream;
  /// Engine defaults from Table III (R=20, W=10, T, θ, η).
  ContinuousCpdOptions engine;
  /// Paper-reported numbers for side-by-side reporting.
  std::string paper_size;
  double paper_nnz_millions = 0.0;
  double paper_density = 0.0;

  /// End of the warm-up phase (= W·T): tuples at or before this time fill
  /// the window; later tuples are processed continuously.
  int64_t WarmupEndTime() const {
    return static_cast<int64_t>(engine.window_size) * engine.period;
  }
};

/// The four presets. `event_scale` multiplies the default event counts
/// (1.0 ≈ quick-bench size; raise it to stress the system).
DatasetSpec DivvyBikesPreset(double event_scale = 1.0);
DatasetSpec ChicagoCrimePreset(double event_scale = 1.0);
DatasetSpec NewYorkTaxiPreset(double event_scale = 1.0);
DatasetSpec RideAustinPreset(double event_scale = 1.0);

/// All four, in the paper's order.
std::vector<DatasetSpec> AllDatasetPresets(double event_scale = 1.0);

/// Reads the benchmark scale factor from the SNS_BENCH_SCALE environment
/// variable (default 1.0; values are clamped to [0.05, 100]).
double BenchEventScaleFromEnv();

}  // namespace sns

#endif  // SLICENSTITCH_DATA_DATASETS_H_
