// CSV loader for real multi-aspect data streams, so the original paper
// datasets (or any log with the same shape) can replace the synthetic
// generators. Expected row format, one event per line:
//
//   i_1,...,i_{M-1},value,timestamp
//
// with 0-based integer categorical indices, a real value, and an integer
// timestamp; rows must be sorted by timestamp.

#ifndef SLICENSTITCH_DATA_LOADER_H_
#define SLICENSTITCH_DATA_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/data_stream.h"

namespace sns {

/// Loads a stream with the given non-time mode sizes from a delimited file.
/// Fails on malformed rows, out-of-range indices, or time regressions.
StatusOr<DataStream> LoadStreamCsv(const std::string& path,
                                   std::vector<int64_t> mode_dims,
                                   char delimiter = ',',
                                   bool skip_header = false);

/// Writes a stream in the same format (useful for exporting synthetic
/// streams for external tools).
Status SaveStreamCsv(const DataStream& stream, const std::string& path,
                     char delimiter = ',');

}  // namespace sns

#endif  // SLICENSTITCH_DATA_LOADER_H_
