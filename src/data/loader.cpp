#include "data/loader.h"

#include "common/csv.h"

namespace sns {

StatusOr<DataStream> LoadStreamCsv(const std::string& path,
                                   std::vector<int64_t> mode_dims,
                                   char delimiter, bool skip_header) {
  auto rows = ReadDelimitedFile(path, delimiter, skip_header);
  if (!rows.ok()) return rows.status();

  const size_t modes = mode_dims.size();
  DataStream stream(std::move(mode_dims));
  stream.Reserve(static_cast<int64_t>(rows.value().size()));
  size_t line = skip_header ? 2 : 1;
  for (const auto& fields : rows.value()) {
    if (fields.size() != modes + 2) {
      return Status::InvalidArgument(
          "line " + std::to_string(line) + ": expected " +
          std::to_string(modes + 2) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple tuple;
    for (size_t m = 0; m < modes; ++m) {
      auto index = ParseInt64(fields[m]);
      if (!index.ok()) return index.status();
      tuple.index.PushBack(static_cast<int32_t>(index.value()));
    }
    auto value = ParseDouble(fields[modes]);
    if (!value.ok()) return value.status();
    tuple.value = value.value();
    auto time = ParseInt64(fields[modes + 1]);
    if (!time.ok()) return time.status();
    tuple.time = time.value();
    SNS_RETURN_IF_ERROR(stream.Append(tuple));
    ++line;
  }
  return stream;
}

Status SaveStreamCsv(const DataStream& stream, const std::string& path,
                     char delimiter) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(stream.size()));
  for (const Tuple& tuple : stream.tuples()) {
    std::vector<std::string> fields;
    for (int m = 0; m < tuple.index.size(); ++m) {
      fields.push_back(std::to_string(tuple.index[m]));
    }
    fields.push_back(std::to_string(tuple.value));
    fields.push_back(std::to_string(tuple.time));
    rows.push_back(std::move(fields));
  }
  return WriteDelimitedFile(path, delimiter, rows);
}

}  // namespace sns
