// Synthetic multi-aspect stream generator.
//
// The paper's four datasets are public trip/crime/taxi logs that are not
// available offline, so experiments run on synthetic streams engineered to
// preserve what the algorithms are sensitive to (see DESIGN.md §2):
//   - a ground-truth low-rank structure: events are drawn from a small set
//     of latent components, each with skewed per-mode index profiles (so CP
//     decomposition has signal to fit, like recurring traffic patterns),
//   - background noise events with uniform indices (model violations),
//   - Poisson-like arrivals with a diurnal rate modulation (time locality),
//   - count values (v = 1 per event unless configured otherwise).

#ifndef SLICENSTITCH_DATA_SYNTHETIC_H_
#define SLICENSTITCH_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "stream/data_stream.h"

namespace sns {

/// Parameters of the generator. Defaults give a well-behaved mid-size
/// stream; the dataset presets (data/datasets.h) override them.
struct SyntheticStreamConfig {
  /// Sizes of the M−1 non-time modes.
  std::vector<int64_t> mode_dims;
  /// Number of events to emit.
  int64_t num_events = 10000;
  /// Events are spread over [1, time_span] (inclusive) in stream time units.
  int64_t time_span = 100000;
  /// Number of ground-truth latent components.
  int latent_rank = 8;
  /// Fraction of events with uniformly random indices (structure noise).
  double noise_fraction = 0.1;
  /// Zipf-like exponent shaping each component's per-mode index profile:
  /// weight of the k-th most popular index ∝ (k+1)^(-skew).
  double popularity_skew = 1.2;
  /// Relative amplitude (0..1) of the sinusoidal arrival-rate modulation.
  double diurnal_strength = 0.5;
  /// Period of the rate modulation in stream time units.
  int64_t diurnal_period = 86400;
  /// Event values are drawn uniformly from [value_min, value_max] and
  /// rounded to integers when both bounds are integral. 1/1 = count data.
  double value_min = 1.0;
  double value_max = 1.0;
  uint64_t seed = 20210217;  // SliceNStitch's ICDE submission era.

  Status Validate() const;
};

/// Generates a chronological stream per the configuration.
StatusOr<DataStream> GenerateSyntheticStream(
    const SyntheticStreamConfig& config);

}  // namespace sns

#endif  // SLICENSTITCH_DATA_SYNTHETIC_H_
