#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace sns {

Status SyntheticStreamConfig::Validate() const {
  if (mode_dims.empty()) {
    return Status::InvalidArgument("mode_dims must be non-empty");
  }
  for (int64_t dim : mode_dims) {
    if (dim < 1) return Status::InvalidArgument("mode sizes must be >= 1");
  }
  if (num_events < 0) return Status::InvalidArgument("num_events < 0");
  if (time_span < 1) return Status::InvalidArgument("time_span < 1");
  if (latent_rank < 1) return Status::InvalidArgument("latent_rank < 1");
  if (noise_fraction < 0.0 || noise_fraction > 1.0) {
    return Status::InvalidArgument("noise_fraction must be in [0, 1]");
  }
  if (diurnal_strength < 0.0 || diurnal_strength > 1.0) {
    return Status::InvalidArgument("diurnal_strength must be in [0, 1]");
  }
  if (diurnal_period < 1) return Status::InvalidArgument("diurnal_period < 1");
  if (value_min > value_max) {
    return Status::InvalidArgument("value_min > value_max");
  }
  return Status::OK();
}

namespace {

/// A latent component: one categorical profile per non-time mode. The k-th
/// most popular index of a random permutation gets weight (k+1)^(-skew).
struct Component {
  std::vector<std::vector<double>> mode_weights;
};

std::vector<Component> MakeComponents(const SyntheticStreamConfig& config,
                                      Rng& rng) {
  std::vector<Component> components(
      static_cast<size_t>(config.latent_rank));
  for (Component& component : components) {
    for (int64_t dim : config.mode_dims) {
      std::vector<double> weights(static_cast<size_t>(dim));
      // Random permutation of ranks.
      std::vector<size_t> perm(static_cast<size_t>(dim));
      for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[static_cast<size_t>(rng.NextUint64(i))]);
      }
      for (size_t k = 0; k < perm.size(); ++k) {
        weights[perm[k]] =
            std::pow(static_cast<double>(k + 1), -config.popularity_skew);
      }
      component.mode_weights.push_back(std::move(weights));
    }
  }
  return components;
}

}  // namespace

StatusOr<DataStream> GenerateSyntheticStream(
    const SyntheticStreamConfig& config) {
  SNS_RETURN_IF_ERROR(config.Validate());
  Rng rng(config.seed);

  std::vector<Component> components = MakeComponents(config, rng);
  // Skewed component mixing: popular patterns dominate.
  std::vector<double> mixing(static_cast<size_t>(config.latent_rank));
  for (size_t r = 0; r < mixing.size(); ++r) {
    mixing[r] = std::pow(static_cast<double>(r + 1), -1.0);
  }

  // Arrival times: uniform proposals thinned by the diurnal profile
  // (equivalent to sampling from the modulated intensity), then sorted.
  std::vector<int64_t> times;
  times.reserve(static_cast<size_t>(config.num_events));
  const double two_pi = 2.0 * M_PI;
  while (static_cast<int64_t>(times.size()) < config.num_events) {
    const int64_t t = rng.UniformInt(1, config.time_span);
    const double phase = two_pi * static_cast<double>(t % config.diurnal_period) /
                         static_cast<double>(config.diurnal_period);
    const double accept =
        (1.0 + config.diurnal_strength * std::sin(phase)) /
        (1.0 + config.diurnal_strength);
    if (rng.UniformDouble() < accept) times.push_back(t);
  }
  std::sort(times.begin(), times.end());

  const bool integral_values = config.value_min == std::floor(config.value_min) &&
                               config.value_max == std::floor(config.value_max);
  DataStream stream(config.mode_dims);
  stream.Reserve(config.num_events);
  const int modes = static_cast<int>(config.mode_dims.size());
  for (int64_t n = 0; n < config.num_events; ++n) {
    Tuple tuple;
    tuple.time = times[static_cast<size_t>(n)];
    if (rng.UniformDouble() < config.noise_fraction) {
      for (int m = 0; m < modes; ++m) {
        tuple.index.PushBack(static_cast<int32_t>(
            rng.UniformInt(0, config.mode_dims[static_cast<size_t>(m)] - 1)));
      }
    } else {
      const Component& component = components[rng.Categorical(mixing)];
      for (int m = 0; m < modes; ++m) {
        tuple.index.PushBack(static_cast<int32_t>(
            rng.Categorical(component.mode_weights[static_cast<size_t>(m)])));
      }
    }
    if (integral_values) {
      tuple.value = static_cast<double>(rng.UniformInt(
          static_cast<int64_t>(config.value_min),
          static_cast<int64_t>(config.value_max)));
    } else {
      tuple.value = rng.UniformDouble(config.value_min, config.value_max);
    }
    SNS_RETURN_IF_ERROR(stream.Append(tuple));
  }
  return stream;
}

}  // namespace sns
