#include "data/datasets.h"

#include <algorithm>
#include <cstdlib>

namespace sns {
namespace {

constexpr int kRank = 20;       // Table III.
constexpr int kWindowSize = 10; // Table III.

ContinuousCpdOptions EngineDefaults(int64_t period, int64_t theta,
                                    uint64_t seed) {
  ContinuousCpdOptions options;
  options.rank = kRank;
  options.window_size = kWindowSize;
  options.period = period;
  options.variant = SnsVariant::kRndPlus;
  options.sample_threshold = theta;
  options.clip_bound = 1000.0;  // η of Table III.
  options.init.max_iterations = 40;
  options.init.fitness_tolerance = 1e-4;
  options.seed = seed;
  return options;
}

int64_t ScaledEvents(double base, double scale) {
  return std::max<int64_t>(200, static_cast<int64_t>(base * scale));
}

}  // namespace

DatasetSpec DivvyBikesPreset(double event_scale) {
  DatasetSpec spec;
  spec.name = "divvy";
  spec.paper_name = "Divvy Bikes";
  spec.engine = EngineDefaults(/*period=*/1440, /*theta=*/20, /*seed=*/101);
  spec.stream.mode_dims = {673, 673};
  spec.stream.num_events = ScaledEvents(8000, event_scale);
  spec.stream.time_span =
      (1 + kLiveWindows) * kWindowSize * spec.engine.period;
  spec.stream.latent_rank = 12;
  spec.stream.noise_fraction = 0.15;
  spec.stream.popularity_skew = 1.1;
  spec.stream.diurnal_period = 1440;  // Minutes per day.
  spec.stream.diurnal_strength = 0.6;
  spec.stream.seed = 811;
  spec.paper_size = "673 x 673 x 525594 [min]";
  spec.paper_nnz_millions = 3.82;
  spec.paper_density = 1.604e-5;
  return spec;
}

DatasetSpec ChicagoCrimePreset(double event_scale) {
  DatasetSpec spec;
  spec.name = "crime";
  spec.paper_name = "Chicago Crime";
  spec.engine = EngineDefaults(/*period=*/720, /*theta=*/20, /*seed=*/102);
  spec.stream.mode_dims = {77, 32};
  spec.stream.num_events = ScaledEvents(12000, event_scale);
  spec.stream.time_span =
      (1 + kLiveWindows) * kWindowSize * spec.engine.period;
  spec.stream.latent_rank = 10;
  spec.stream.noise_fraction = 0.2;
  spec.stream.popularity_skew = 1.0;
  spec.stream.diurnal_period = 24;  // Hours per day.
  spec.stream.diurnal_strength = 0.4;
  spec.stream.seed = 822;
  spec.paper_size = "77 x 32 x 148464 [hour]";
  spec.paper_nnz_millions = 5.33;
  spec.paper_density = 1.457e-2;
  return spec;
}

DatasetSpec NewYorkTaxiPreset(double event_scale) {
  DatasetSpec spec;
  spec.name = "taxi";
  spec.paper_name = "New York Taxi";
  spec.engine = EngineDefaults(/*period=*/3600, /*theta=*/20, /*seed=*/103);
  spec.stream.mode_dims = {265, 265};
  spec.stream.num_events = ScaledEvents(15000, event_scale);
  spec.stream.time_span =
      (1 + kLiveWindows) * kWindowSize * spec.engine.period;
  spec.stream.latent_rank = 15;
  spec.stream.noise_fraction = 0.1;
  spec.stream.popularity_skew = 1.2;
  spec.stream.diurnal_period = 86400;  // Seconds per day.
  spec.stream.diurnal_strength = 0.6;
  spec.stream.seed = 833;
  spec.paper_size = "265 x 265 x 5184000 [sec]";
  spec.paper_nnz_millions = 84.39;
  spec.paper_density = 2.318e-4;
  return spec;
}

DatasetSpec RideAustinPreset(double event_scale) {
  DatasetSpec spec;
  spec.name = "austin";
  spec.paper_name = "Ride Austin";
  spec.engine = EngineDefaults(/*period=*/1440, /*theta=*/50, /*seed=*/104);
  spec.stream.mode_dims = {219, 219, 24};
  spec.stream.num_events = ScaledEvents(6000, event_scale);
  spec.stream.time_span =
      (1 + kLiveWindows) * kWindowSize * spec.engine.period;
  spec.stream.latent_rank = 10;
  spec.stream.noise_fraction = 0.15;
  spec.stream.popularity_skew = 1.2;
  spec.stream.diurnal_period = 1440;  // Minutes per day.
  spec.stream.diurnal_strength = 0.5;
  spec.stream.seed = 844;
  spec.paper_size = "219 x 219 x 24 x 285136 [min]";
  spec.paper_nnz_millions = 0.89;
  spec.paper_density = 2.739e-6;
  return spec;
}

std::vector<DatasetSpec> AllDatasetPresets(double event_scale) {
  return {DivvyBikesPreset(event_scale), ChicagoCrimePreset(event_scale),
          NewYorkTaxiPreset(event_scale), RideAustinPreset(event_scale)};
}

double BenchEventScaleFromEnv() {
  const char* raw = std::getenv("SNS_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || value <= 0.0) return 1.0;
  return std::clamp(value, 0.05, 100.0);
}

}  // namespace sns
