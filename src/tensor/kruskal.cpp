#include "tensor/kruskal.h"

#include <cmath>

#include "common/random.h"

namespace sns {

KruskalModel::KruskalModel(std::vector<Matrix> factors)
    : factors_(std::move(factors)) {
  SNS_CHECK(!factors_.empty());
  rank_ = factors_[0].cols();
  for (const Matrix& f : factors_) SNS_CHECK(f.cols() == rank_);
  lambda_.assign(static_cast<size_t>(rank_), 1.0);
}

KruskalModel KruskalModel::Random(const std::vector<int64_t>& dims,
                                  int64_t rank, Rng& rng) {
  std::vector<Matrix> factors;
  factors.reserve(dims.size());
  for (int64_t n : dims) factors.push_back(Matrix::RandomUniform(n, rank, rng));
  return KruskalModel(std::move(factors));
}

int64_t KruskalModel::NumParameters() const {
  int64_t total = 0;
  for (const Matrix& f : factors_) total += f.rows() * f.cols();
  return total;
}

double KruskalModel::Evaluate(const ModeIndex& index) const {
  SNS_DCHECK(index.size() == num_modes());
  double sum = 0.0;
  for (int64_t r = 0; r < rank_; ++r) {
    double prod = lambda_[static_cast<size_t>(r)];
    for (int m = 0; m < num_modes() && prod != 0.0; ++m) {
      prod *= factors_[m](index[m], r);
    }
    sum += prod;
  }
  return sum;
}

double KruskalModel::NormSquared() const {
  // ∗_m A(m)'A(m), then λ' G λ.
  Matrix gram = MultiplyTransposeA(factors_[0], factors_[0]);
  for (int m = 1; m < num_modes(); ++m) {
    gram = Hadamard(gram, MultiplyTransposeA(factors_[m], factors_[m]));
  }
  double sum = 0.0;
  for (int64_t r = 0; r < rank_; ++r) {
    for (int64_t s = 0; s < rank_; ++s) {
      sum += lambda_[static_cast<size_t>(r)] * gram(r, s) *
             lambda_[static_cast<size_t>(s)];
    }
  }
  return sum;
}

double KruskalModel::InnerProduct(const SparseTensor& x) const {
  double sum = 0.0;
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    sum += value * Evaluate(index);
  });
  return sum;
}

double KruskalModel::ResidualNormSquared(const SparseTensor& x) const {
  const double value =
      NormSquared() - 2.0 * InnerProduct(x) + x.FrobeniusNormSquared();
  return value > 0.0 ? value : 0.0;
}

double KruskalModel::Fitness(const SparseTensor& x) const {
  const double x_norm_sq = x.FrobeniusNormSquared();
  if (x_norm_sq <= 0.0) return 0.0;
  return 1.0 - std::sqrt(ResidualNormSquared(x) / x_norm_sq);
}

}  // namespace sns
