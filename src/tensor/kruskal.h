// Kruskal (CP) model: the output of CP decomposition — M factor matrices
// plus per-component weights λ (Eq. 1 of the paper). Provides cell
// evaluation, the Gram-identity norm, and the exact fitness metric
// 1 − ‖X̃ − X‖_F / ‖X‖_F used throughout the evaluation section.

#ifndef SLICENSTITCH_TENSOR_KRUSKAL_H_
#define SLICENSTITCH_TENSOR_KRUSKAL_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace sns {

class Rng;

/// CP model ⟦λ; A(1), …, A(M)⟧ with A(m) of shape dims[m]×R.
///
/// λ defaults to all-ones; only SNS-MAT (which column-normalizes per Alg. 2)
/// keeps a non-trivial λ.
class KruskalModel {
 public:
  KruskalModel() : rank_(0) {}

  /// Model with the given factors; λ = 1.
  explicit KruskalModel(std::vector<Matrix> factors);

  /// Uniform[0,1) random factors of shape dims[m]×rank — the standard sparse
  /// CP initialization (non-negative so early approximations are not
  /// self-cancelling).
  static KruskalModel Random(const std::vector<int64_t>& dims, int64_t rank,
                             Rng& rng);

  int num_modes() const { return static_cast<int>(factors_.size()); }
  int64_t rank() const { return rank_; }

  const Matrix& factor(int mode) const { return factors_[mode]; }
  Matrix& factor(int mode) { return factors_[mode]; }
  const std::vector<Matrix>& factors() const { return factors_; }

  const std::vector<double>& lambda() const { return lambda_; }
  std::vector<double>& lambda() { return lambda_; }

  /// Total number of model parameters Σ_m N_m·R (the quantity in Fig. 1d).
  int64_t NumParameters() const;

  /// Model value at one cell: Σ_r λ_r Π_m A(m)(i_m, r).
  double Evaluate(const ModeIndex& index) const;

  /// ‖X̃‖²_F via the Gram identity λ'(∗_m A(m)'A(m))λ — O(Σ N_m R²), no
  /// materialization of the dense tensor.
  double NormSquared() const;

  /// ⟨X̃, X⟩ = Σ over non-zeros of X of x_J · X̃_J — O(|X| M R).
  double InnerProduct(const SparseTensor& x) const;

  /// ‖X̃ − X‖²_F (clamped at 0 against floating-point cancellation).
  double ResidualNormSquared(const SparseTensor& x) const;

  /// Fitness = 1 − ‖X̃ − X‖_F / ‖X‖_F. Returns 0 when X is all zero.
  double Fitness(const SparseTensor& x) const;

 private:
  std::vector<Matrix> factors_;
  std::vector<double> lambda_;
  int64_t rank_;
};

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_KRUSKAL_H_
