// Sparse MTTKRP — the matricized-tensor-times-Khatri-Rao product
// X_(n) (⊙_{m≠n} A(m)) at the heart of ALS (Eq. 4) and SNS-MAT (Alg. 2).
// Also provides the per-row Hadamard kernel that every SliceNStitch row
// update rule shares.
//
// Padded-buffer contract: the `out` / `had` scratch pointers below must
// reference PaddedRank(R) doubles (R = factors[0].cols()); the kernels run
// tail-free to the padded bound through the compile-time rank dispatch of
// linalg/rank_dispatch.h and leave the padding lanes at exactly 0.0.
// AlignedVector (linalg/simd.h) and Matrix rows satisfy the contract.

#ifndef SLICENSTITCH_TENSOR_MTTKRP_H_
#define SLICENSTITCH_TENSOR_MTTKRP_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/matrix32.h"
#include "tensor/sparse_tensor.h"

namespace sns {

struct RankKernelTable;  // linalg/rank_dispatch.h

/// out[r] = Π_{m≠skip_mode} factors[m](index[m], r) for r in [0, R).
/// With skip_mode = -1, multiplies over every mode. `out` must hold
/// PaddedRank(R) values (padding is left zeroed).
///
/// Table-taking overloads (here and below) run through the caller's cached
/// RankKernelTable — the hot-path form, honoring an engine-pinned kernel
/// tier; the plain overloads resolve the process-wide auto tier per call.
void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out);
void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out,
                        const RankKernelTable& kr);

/// Mixed-precision form: reads float32 factor mirrors (linalg/matrix32.h),
/// accumulating in double. `out` must hold PaddedRank(R) doubles, R =
/// factors32[0].cols(); `kr` must match PaddedRank(R).
void HadamardRowProduct32(const std::vector<Matrix32>& factors32,
                          const ModeIndex& index, int skip_mode, double* out,
                          const RankKernelTable& kr);

/// Full sparse MTTKRP: returns the N_mode × R matrix
/// X_(mode) (⊙_{m≠mode} A(m)), iterating once over the non-zeros of x.
Matrix Mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode);

/// Row-restricted MTTKRP: the 1×R row X_(mode)(row, :) (⊙_{m≠mode} A(m)),
/// i.e. Σ over non-zeros with mode-th index = row of x_J · Π_{m≠mode}
/// A(m)(j_m, :). Cost O(deg(mode,row)·M·R) — the dominant term of
/// Theorem 4. Iterates the slice through SparseTensor::Slice, which carries
/// values, so no per-entry hash lookup happens here (regression-guarded by
/// storage_test). `out` must hold PaddedRank(R) values.
void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out);

/// Scratch-buffer form of MttkrpRow: `had` must hold PaddedRank(R) values
/// and is used as the per-entry Hadamard workspace. Performs no heap
/// allocation — the form called on the per-event update hot path.
void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had);
void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had,
               const RankKernelTable& kr);

/// Mixed-precision row MTTKRP: factor rows are read from the float32
/// mirrors with double accumulation. Same scratch contract as MttkrpRow.
void MttkrpRow32(const SparseTensor& x, const std::vector<Matrix32>& factors32,
                 int mode, int64_t row, double* out, double* had,
                 const RankKernelTable& kr);

/// Allocation-free full MTTKRP into a preallocated dim(mode)×R `out`
/// (zeroed here); `had` must hold PaddedRank(R) values. The hot-path form
/// used by the SNS-MAT per-event ALS sweep.
void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had);
void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had,
                const RankKernelTable& kr);

/// Hadamard of all Gram matrices except `skip_mode` (skip_mode = -1 keeps
/// all): H(m) = ∗_{n≠m} A(n)'A(n) of Eqs. 4/12. `grams[m]` must be R×R.
Matrix HadamardOfGramsExcept(const std::vector<Matrix>& grams, int skip_mode);

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_MTTKRP_H_
