#include "tensor/mttkrp.h"

#include <algorithm>

#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"

namespace sns {
namespace {

// The two modes of a 3-mode tensor other than `mode`, in ascending order —
// the common case gets a fused single-pass kernel below. The fused product
// v·(r_a[r]·r_b[r]) groups exactly like the generic Hadamard accumulation
// (1·r_a is exact), so both paths are bitwise identical.
inline void OtherTwoModes(int mode, int* a, int* b) {
  *a = mode == 0 ? 1 : 0;
  *b = mode == 2 ? 1 : 2;
}

// Rank-dispatched body of HadamardRowProduct. The padded lanes end at 0.0:
// they start at 0.0, and every accumulated factor row has zero padding.
template <int64_t P>
void HadamardRowProductImpl(const std::vector<Matrix>& factors,
                            const ModeIndex& index, int skip_mode,
                            double* out, int64_t rank, int64_t padded) {
  std::fill(out, out + rank, 1.0);
  std::fill(out + rank, out + padded, 0.0);
  for (size_t m = 0; m < factors.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    VecMulAccum<P>(out, factors[m].Row(index[static_cast<int>(m)]), padded);
  }
}

template <int64_t P>
void MttkrpRowImpl(const SparseTensor& x, const std::vector<Matrix>& factors,
                   int mode, int64_t row, double* out, double* had,
                   int64_t rank, int64_t padded) {
  VecFill<P>(out, 0.0, padded);
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
      VecFma3<P>(entry.value, fa.Row(entry.coords[a]),
                 fb.Row(entry.coords[b]), out, padded);
    }
    return;
  }
  for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
    HadamardRowProductImpl<P>(factors, entry.coords, mode, had, rank, padded);
    VecAxpy<P>(entry.value, had, out, padded);
  }
}

template <int64_t P>
void MttkrpIntoImpl(const SparseTensor& x, const std::vector<Matrix>& factors,
                    int mode, Matrix& out, double* had, int64_t rank,
                    int64_t padded) {
  out.SetZero();
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    x.ForEachNonzero([&](const ModeIndex& index, double value) {
      VecFma3<P>(value, fa.Row(index[a]), fb.Row(index[b]),
                 out.Row(index[mode]), padded);
    });
    return;
  }
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    HadamardRowProductImpl<P>(factors, index, mode, had, rank, padded);
    VecAxpy<P>(value, had, out.Row(index[mode]), padded);
  });
}

}  // namespace

void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out) {
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  DispatchPaddedRank(padded, [&](auto tag) {
    HadamardRowProductImpl<decltype(tag)::value>(factors, index, skip_mode,
                                                 out, rank, padded);
  });
}

Matrix Mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode) {
  const int64_t rank = factors[0].cols();
  Matrix out(x.dim(mode), rank);
  AlignedVector had(rank);
  MttkrpInto(x, factors, mode, out, had.data());
  return out;
}

void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had) {
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  SNS_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  DispatchPaddedRank(padded, [&](auto tag) {
    MttkrpIntoImpl<decltype(tag)::value>(x, factors, mode, out, had, rank,
                                         padded);
  });
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out) {
  AlignedVector had(factors[0].cols());
  MttkrpRow(x, factors, mode, row, out, had.data());
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had) {
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  DispatchPaddedRank(padded, [&](auto tag) {
    MttkrpRowImpl<decltype(tag)::value>(x, factors, mode, row, out, had, rank,
                                        padded);
  });
}

Matrix HadamardOfGramsExcept(const std::vector<Matrix>& grams, int skip_mode) {
  SNS_CHECK(!grams.empty());
  const int64_t rank = grams[0].rows();
  Matrix h(rank, rank);
  h.Fill(1.0);
  for (size_t m = 0; m < grams.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    h = Hadamard(h, grams[m]);
  }
  return h;
}

}  // namespace sns
