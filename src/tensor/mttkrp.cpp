#include "tensor/mttkrp.h"

#include <algorithm>

#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"

namespace sns {
namespace {

// The two modes of a 3-mode tensor other than `mode`, in ascending order —
// the common case gets a fused single-pass kernel below. The fused product
// v·(r_a[r]·r_b[r]) groups exactly like the generic Hadamard accumulation
// (1·r_a is exact), so both paths are bitwise identical per tier.
inline void OtherTwoModes(int mode, int* a, int* b) {
  *a = mode == 0 ? 1 : 0;
  *b = mode == 2 ? 1 : 2;
}

// Body of HadamardRowProduct. The padded lanes end at 0.0: they start at
// 0.0, and every accumulated factor row has zero padding.
inline void HadamardRowProductImpl(const std::vector<Matrix>& factors,
                                   const ModeIndex& index, int skip_mode,
                                   double* out, int64_t rank, int64_t padded,
                                   const RankKernelTable& kr) {
  std::fill(out, out + rank, 1.0);
  std::fill(out + rank, out + padded, 0.0);
  for (size_t m = 0; m < factors.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    kr.mul_accum(out, factors[m].Row(index[static_cast<int>(m)]), padded);
  }
}

inline void HadamardRowProduct32Impl(const std::vector<Matrix32>& factors32,
                                     const ModeIndex& index, int skip_mode,
                                     double* out, int64_t rank, int64_t padded,
                                     const RankKernelTable& kr) {
  std::fill(out, out + rank, 1.0);
  std::fill(out + rank, out + padded, 0.0);
  for (size_t m = 0; m < factors32.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    kr.mul_accum_f32(out, factors32[m].Row(index[static_cast<int>(m)]),
                     padded);
  }
}

}  // namespace

void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out) {
  HadamardRowProduct(factors, index, skip_mode, out,
                     GetRankKernelTable(factors[0].stride()));
}

void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out,
                        const RankKernelTable& kr) {
  HadamardRowProductImpl(factors, index, skip_mode, out, factors[0].cols(),
                         factors[0].stride(), kr);
}

void HadamardRowProduct32(const std::vector<Matrix32>& factors32,
                          const ModeIndex& index, int skip_mode, double* out,
                          const RankKernelTable& kr) {
  const int64_t rank = factors32[0].cols();
  HadamardRowProduct32Impl(factors32, index, skip_mode, out, rank,
                           PaddedRank(rank), kr);
}

Matrix Mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode) {
  const int64_t rank = factors[0].cols();
  Matrix out(x.dim(mode), rank);
  AlignedVector had(rank);
  MttkrpInto(x, factors, mode, out, had.data());
  return out;
}

void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had) {
  MttkrpInto(x, factors, mode, out, had,
             GetRankKernelTable(factors[0].stride()));
}

void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had,
                const RankKernelTable& kr) {
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  SNS_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.SetZero();
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    x.ForEachNonzero([&](const ModeIndex& index, double value) {
      kr.fma3(value, fa.Row(index[a]), fb.Row(index[b]), out.Row(index[mode]),
              padded);
    });
    return;
  }
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    HadamardRowProductImpl(factors, index, mode, had, rank, padded, kr);
    kr.axpy(value, had, out.Row(index[mode]), padded);
  });
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out) {
  AlignedVector had(factors[0].cols());
  MttkrpRow(x, factors, mode, row, out, had.data());
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had) {
  MttkrpRow(x, factors, mode, row, out, had,
            GetRankKernelTable(factors[0].stride()));
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had,
               const RankKernelTable& kr) {
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  kr.fill(out, 0.0, padded);
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
      kr.fma3(entry.value, fa.Row(entry.coords[a]), fb.Row(entry.coords[b]),
              out, padded);
    }
    return;
  }
  for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
    HadamardRowProductImpl(factors, entry.coords, mode, had, rank, padded, kr);
    kr.axpy(entry.value, had, out, padded);
  }
}

void MttkrpRow32(const SparseTensor& x, const std::vector<Matrix32>& factors32,
                 int mode, int64_t row, double* out, double* had,
                 const RankKernelTable& kr) {
  const int64_t rank = factors32[0].cols();
  const int64_t padded = PaddedRank(rank);
  kr.fill(out, 0.0, padded);
  if (factors32.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix32& fa = factors32[static_cast<size_t>(a)];
    const Matrix32& fb = factors32[static_cast<size_t>(b)];
    for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
      kr.fma3_f32(entry.value, fa.Row(entry.coords[a]),
                  fb.Row(entry.coords[b]), out, padded);
    }
    return;
  }
  for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
    HadamardRowProduct32Impl(factors32, entry.coords, mode, had, rank, padded,
                             kr);
    kr.axpy(entry.value, had, out, padded);
  }
}

Matrix HadamardOfGramsExcept(const std::vector<Matrix>& grams, int skip_mode) {
  SNS_CHECK(!grams.empty());
  const int64_t rank = grams[0].rows();
  Matrix h(rank, rank);
  h.Fill(1.0);
  for (size_t m = 0; m < grams.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    h = Hadamard(h, grams[m]);
  }
  return h;
}

}  // namespace sns
