#include "tensor/mttkrp.h"

#include <algorithm>

namespace sns {

void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out) {
  const int64_t rank = factors[0].cols();
  std::fill(out, out + rank, 1.0);
  for (size_t m = 0; m < factors.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    const double* row = factors[m].Row(index[static_cast<int>(m)]);
    for (int64_t r = 0; r < rank; ++r) out[r] *= row[r];
  }
}

Matrix Mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode) {
  const int64_t rank = factors[0].cols();
  Matrix out(x.dim(mode), rank);
  std::vector<double> had(static_cast<size_t>(rank));
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    HadamardRowProduct(factors, index, mode, had.data());
    double* out_row = out.Row(index[mode]);
    for (int64_t r = 0; r < rank; ++r) out_row[r] += value * had[r];
  });
  return out;
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out) {
  const int64_t rank = factors[0].cols();
  std::fill(out, out + rank, 0.0);
  std::vector<double> had(static_cast<size_t>(rank));
  for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
    HadamardRowProduct(factors, entry.coords, mode, had.data());
    for (int64_t r = 0; r < rank; ++r) out[r] += entry.value * had[r];
  }
}

Matrix HadamardOfGramsExcept(const std::vector<Matrix>& grams, int skip_mode) {
  SNS_CHECK(!grams.empty());
  const int64_t rank = grams[0].rows();
  Matrix h(rank, rank);
  h.Fill(1.0);
  for (size_t m = 0; m < grams.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    h = Hadamard(h, grams[m]);
  }
  return h;
}

}  // namespace sns
