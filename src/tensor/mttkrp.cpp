#include "tensor/mttkrp.h"

#include <algorithm>

namespace sns {

void HadamardRowProduct(const std::vector<Matrix>& factors,
                        const ModeIndex& index, int skip_mode, double* out) {
  const int64_t rank = factors[0].cols();
  std::fill(out, out + rank, 1.0);
  for (size_t m = 0; m < factors.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    const double* row = factors[m].Row(index[static_cast<int>(m)]);
    for (int64_t r = 0; r < rank; ++r) out[r] *= row[r];
  }
}

Matrix Mttkrp(const SparseTensor& x, const std::vector<Matrix>& factors,
              int mode) {
  const int64_t rank = factors[0].cols();
  Matrix out(x.dim(mode), rank);
  std::vector<double> had(static_cast<size_t>(rank));
  MttkrpInto(x, factors, mode, out, had.data());
  return out;
}

namespace {

// The two modes of a 3-mode tensor other than `mode`, in ascending order —
// the common case gets a fused single-pass kernel below. The fused product
// v·(r_a[r]·r_b[r]) groups exactly like the generic Hadamard accumulation
// (1·r_a is exact), so both paths are bitwise identical.
inline void OtherTwoModes(int mode, int* a, int* b) {
  *a = mode == 0 ? 1 : 0;
  *b = mode == 2 ? 1 : 2;
}

}  // namespace

void MttkrpInto(const SparseTensor& x, const std::vector<Matrix>& factors,
                int mode, Matrix& out, double* had) {
  const int64_t rank = factors[0].cols();
  SNS_CHECK(out.rows() == x.dim(mode) && out.cols() == rank);
  out.SetZero();
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    x.ForEachNonzero([&](const ModeIndex& index, double value) {
      const double* ra = fa.Row(index[a]);
      const double* rb = fb.Row(index[b]);
      double* out_row = out.Row(index[mode]);
      for (int64_t r = 0; r < rank; ++r) out_row[r] += value * (ra[r] * rb[r]);
    });
    return;
  }
  x.ForEachNonzero([&](const ModeIndex& index, double value) {
    HadamardRowProduct(factors, index, mode, had);
    double* out_row = out.Row(index[mode]);
    for (int64_t r = 0; r < rank; ++r) out_row[r] += value * had[r];
  });
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out) {
  const int64_t rank = factors[0].cols();
  std::vector<double> had(static_cast<size_t>(rank));
  MttkrpRow(x, factors, mode, row, out, had.data());
}

void MttkrpRow(const SparseTensor& x, const std::vector<Matrix>& factors,
               int mode, int64_t row, double* out, double* had) {
  const int64_t rank = factors[0].cols();
  std::fill(out, out + rank, 0.0);
  if (factors.size() == 3) {
    int a, b;
    OtherTwoModes(mode, &a, &b);
    const Matrix& fa = factors[static_cast<size_t>(a)];
    const Matrix& fb = factors[static_cast<size_t>(b)];
    for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
      const double* ra = fa.Row(entry.coords[a]);
      const double* rb = fb.Row(entry.coords[b]);
      const double v = entry.value;
      for (int64_t r = 0; r < rank; ++r) out[r] += v * (ra[r] * rb[r]);
    }
    return;
  }
  for (const SparseTensor::SliceEntry entry : x.Slice(mode, row)) {
    HadamardRowProduct(factors, entry.coords, mode, had);
    for (int64_t r = 0; r < rank; ++r) out[r] += entry.value * had[r];
  }
}

Matrix HadamardOfGramsExcept(const std::vector<Matrix>& grams, int skip_mode) {
  SNS_CHECK(!grams.empty());
  const int64_t rank = grams[0].rows();
  Matrix h(rank, rank);
  h.Fill(1.0);
  for (size_t m = 0; m < grams.size(); ++m) {
    if (static_cast<int>(m) == skip_mode) continue;
    h = Hadamard(h, grams[m]);
  }
  return h;
}

}  // namespace sns
