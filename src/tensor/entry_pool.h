// Flat entry pool: the contiguous storage engine behind SparseTensor.
//
// Non-zero entries live in one SoA pool — parallel arrays of coordinates,
// values, and per-mode bucket back-pointers — addressed by dense uint32_t
// pool ids. A separate open-addressed hash index (FNV-1a over the
// coordinate, power-of-two capacity, linear probing, tombstone-free
// backshift deletion) maps coordinate → pool id. Erasure swaps the last
// pool entry into the vacated id so the pool stays dense; the caller is
// told which entry moved so it can repoint external references (the
// per-(mode, index) buckets of SparseTensor).
//
// Why this layout: every SliceNStitch update rule iterates slice non-zeros
// (Eqs. 12 & 21, Alg. 4) and the per-event cost bounds of Theorems 1-4 only
// hold in hardware terms if that iteration is a linear walk over contiguous
// memory with no per-entry hashing. The pool gives O(1) point lookups for
// the window bookkeeping and hash-free, value-carrying iteration for the
// solvers.

#ifndef SLICENSTITCH_TENSOR_ENTRY_POOL_H_
#define SLICENSTITCH_TENSOR_ENTRY_POOL_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/mode_index.h"

namespace sns {

/// Dense pool of (coordinate, value) entries plus an open-addressed
/// coordinate → id index. Ids are dense in [0, size()); erasing an entry
/// moves the last entry into its id (see EraseSwap).
class EntryPool {
 public:
  /// Sentinel for "no entry" / empty hash slot.
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  EntryPool() { table_.assign(kMinTableCapacity, kInvalidId); }

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  /// Pre-sizes the pool arrays and the hash table for `expected` entries so
  /// warm-up ingestion avoids rehash/realloc storms.
  void Reserve(size_t expected) {
    coords_.reserve(expected);
    values_.reserve(expected);
    bucket_pos_.reserve(expected);
    size_t capacity = kMinTableCapacity;
    while (expected * 10 >= capacity * 7) capacity <<= 1;
    if (capacity > table_.size()) Rehash(capacity);
  }

  void Clear() {
    coords_.clear();
    values_.clear();
    bucket_pos_.clear();
    table_.assign(table_.size(), kInvalidId);
  }

  const ModeIndex& coords(uint32_t id) const { return coords_[id]; }
  double value(uint32_t id) const { return values_[id]; }
  double& value(uint32_t id) { return values_[id]; }

  /// Per-mode position of entry `id` inside its (mode, index) buckets;
  /// maintained by the owner (SparseTensor), relocated intact on EraseSwap.
  const std::array<uint32_t, kMaxTensorModes>& bucket_pos(uint32_t id) const {
    return bucket_pos_[id];
  }
  std::array<uint32_t, kMaxTensorModes>& bucket_pos(uint32_t id) {
    return bucket_pos_[id];
  }

  /// Id of the entry at `key`, or kInvalidId when absent. O(1) expected.
  uint32_t Find(const ModeIndex& key) const {
    ++hash_lookups_;
    return table_[FindSlot(key)];
  }

  /// Single-probe upsert: returns (id, inserted). When `key` is absent a
  /// new entry holding `value` is created; an existing entry is untouched.
  /// One probe sequence serves both the miss detection and the insert slot.
  std::pair<uint32_t, bool> FindOrInsert(const ModeIndex& key, double value) {
    // Growth runs before the probe so the found slot stays valid; it may
    // fire one insertion early when the key turns out to exist — harmless.
    if ((values_.size() + 1) * 10 >= table_.size() * 7) {
      Rehash(table_.size() * 2);
    }
    ++hash_lookups_;
    const size_t slot = FindSlot(key);
    if (table_[slot] != kInvalidId) return {table_[slot], false};
    const uint32_t id = size();
    table_[slot] = id;
    coords_.push_back(key);
    values_.push_back(value);
    bucket_pos_.emplace_back();
    return {id, true};
  }

  /// Erases entry `id` by swapping the last entry into its slot. Returns the
  /// *old* id of the entry that moved (always the previous last id), or
  /// kInvalidId when `id` was the last entry. After the call the moved
  /// entry's coords/value/bucket_pos live at `id` and the hash index already
  /// reflects the move; only external id references (buckets) remain for the
  /// caller to repoint.
  uint32_t EraseSwap(uint32_t id) {
    SNS_DCHECK(id < size());
    EraseKey(coords_[id]);
    const uint32_t last = size() - 1;
    uint32_t moved = kInvalidId;
    if (id != last) {
      // Redirect the hash slot of the last entry before moving its record.
      ++hash_lookups_;
      const size_t slot = FindSlot(coords_[last]);
      SNS_DCHECK(table_[slot] == last);
      table_[slot] = id;
      coords_[id] = coords_[last];
      values_[id] = values_[last];
      bucket_pos_[id] = bucket_pos_[last];
      moved = last;
    }
    coords_.pop_back();
    values_.pop_back();
    bucket_pos_.pop_back();
    return moved;
  }

  /// Number of hash-index probe sequences performed since construction.
  /// Instrumentation for regression tests: slice/pool iteration must not
  /// touch the hash index at all.
  uint64_t hash_lookup_count() const { return hash_lookups_; }

 private:
  static constexpr size_t kMinTableCapacity = 16;

  size_t Home(const ModeIndex& key, size_t mask) const {
    return ModeIndexHash{}(key) & mask;
  }

  /// Slot holding `key`'s id, or the first empty slot of its probe chain.
  size_t FindSlot(const ModeIndex& key) const {
    const size_t mask = table_.size() - 1;
    size_t slot = Home(key, mask);
    while (table_[slot] != kInvalidId && !(coords_[table_[slot]] == key)) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  /// Removes `key`'s slot with backshift compaction (no tombstones): probe
  /// chain members past the hole are shifted back unless that would move
  /// them before their home slot.
  void EraseKey(const ModeIndex& key) {
    ++hash_lookups_;
    const size_t mask = table_.size() - 1;
    size_t hole = FindSlot(key);
    SNS_DCHECK(table_[hole] != kInvalidId);
    size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask;
      const uint32_t occupant = table_[probe];
      if (occupant == kInvalidId) break;
      const size_t home = Home(coords_[occupant], mask);
      // `occupant` may fill the hole iff its home is cyclically outside
      // (hole, probe] — otherwise the shift would break its probe chain.
      const bool movable = hole <= probe ? (home <= hole || home > probe)
                                         : (home <= hole && home > probe);
      if (movable) {
        table_[hole] = occupant;
        hole = probe;
      }
    }
    table_[hole] = kInvalidId;
  }

  void Rehash(size_t capacity) {
    table_.assign(capacity, kInvalidId);
    const size_t mask = capacity - 1;
    for (uint32_t id = 0; id < size(); ++id) {
      size_t slot = Home(coords_[id], mask);
      while (table_[slot] != kInvalidId) slot = (slot + 1) & mask;
      table_[slot] = id;
    }
  }

  // SoA entry arrays, indexed by pool id.
  std::vector<ModeIndex> coords_;
  std::vector<double> values_;
  std::vector<std::array<uint32_t, kMaxTensorModes>> bucket_pos_;
  // Open-addressed coordinate → id index; power-of-two capacity.
  std::vector<uint32_t> table_;
  mutable uint64_t hash_lookups_ = 0;
};

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_ENTRY_POOL_H_
