#include "tensor/sparse_tensor.h"

#include <cmath>

namespace sns {

SparseTensor::SparseTensor(std::vector<int64_t> dims, int64_t expected_nnz)
    : dims_(std::move(dims)) {
  SNS_CHECK(!dims_.empty());
  SNS_CHECK(static_cast<int>(dims_.size()) <= kMaxTensorModes);
  buckets_.resize(dims_.size());
  for (size_t m = 0; m < dims_.size(); ++m) {
    SNS_CHECK(dims_[m] > 0);
    buckets_[m].resize(static_cast<size_t>(dims_[m]));
  }
  Reserve(expected_nnz);
}

void SparseTensor::Reserve(int64_t expected_nnz) {
  if (expected_nnz > 0) pool_.Reserve(static_cast<size_t>(expected_nnz));
}

double SparseTensor::Get(const ModeIndex& index) const {
  SNS_DCHECK(IndexInBounds(index));
  const uint32_t id = pool_.Find(index);
  return id == EntryPool::kInvalidId ? 0.0 : pool_.value(id);
}

double SparseTensor::Add(const ModeIndex& index, double delta) {
  SNS_DCHECK(IndexInBounds(index));
  const auto [id, inserted] = pool_.FindOrInsert(index, delta);
  if (inserted) {
    if (std::fabs(delta) < kZeroEpsilon) {
      // Net-zero insert: the entry is the pool tail and owns no bucket
      // slots yet, so EraseSwap alone undoes it.
      pool_.EraseSwap(id);
      return 0.0;
    }
    InsertIntoBuckets(id);
    return delta;
  }
  const double value = (pool_.value(id) += delta);
  if (std::fabs(value) < kZeroEpsilon) {
    EraseEntry(id);
    return 0.0;
  }
  return value;
}

void SparseTensor::Set(const ModeIndex& index, double value) {
  SNS_DCHECK(IndexInBounds(index));
  if (std::fabs(value) < kZeroEpsilon) {
    const uint32_t id = pool_.Find(index);
    if (id != EntryPool::kInvalidId) EraseEntry(id);
    return;
  }
  const auto [id, inserted] = pool_.FindOrInsert(index, value);
  if (inserted) {
    InsertIntoBuckets(id);
  } else {
    pool_.value(id) = value;
  }
}

void SparseTensor::Clear() {
  pool_.Clear();
  for (auto& mode_buckets : buckets_) {
    for (auto& bucket : mode_buckets) bucket.clear();
  }
}

double SparseTensor::FrobeniusNormSquared() const {
  double sum = 0.0;
  const uint32_t n = pool_.size();
  for (uint32_t id = 0; id < n; ++id) {
    const double v = pool_.value(id);
    sum += v * v;
  }
  return sum;
}

double SparseTensor::MaxAbsValue() const {
  double best = 0.0;
  const uint32_t n = pool_.size();
  for (uint32_t id = 0; id < n; ++id) {
    best = std::max(best, std::fabs(pool_.value(id)));
  }
  return best;
}

bool SparseTensor::IndexInBounds(const ModeIndex& index) const {
  if (index.size() != num_modes()) return false;
  for (int m = 0; m < index.size(); ++m) {
    if (index[m] < 0 || index[m] >= dims_[m]) return false;
  }
  return true;
}

void SparseTensor::InsertIntoBuckets(uint32_t id) {
  const ModeIndex& index = pool_.coords(id);
  auto& pos = pool_.bucket_pos(id);
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    pos[m] = static_cast<uint32_t>(bucket.size());
    bucket.push_back(id);
  }
}

void SparseTensor::RemoveFromBuckets(uint32_t id) {
  const ModeIndex& index = pool_.coords(id);
  const auto& pos = pool_.bucket_pos(id);
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    const uint32_t p = pos[m];
    SNS_DCHECK(p < bucket.size() && bucket[p] == id);
    const uint32_t last = static_cast<uint32_t>(bucket.size()) - 1;
    if (p != last) {
      // Swap-erase: relocate the tail id and fix its stored position.
      bucket[p] = bucket[last];
      pool_.bucket_pos(bucket[p])[m] = p;
    }
    bucket.pop_back();
  }
}

void SparseTensor::EraseEntry(uint32_t id) {
  RemoveFromBuckets(id);
  const uint32_t moved = pool_.EraseSwap(id);
  if (moved != EntryPool::kInvalidId) {
    // The entry formerly at `moved` now lives at `id`; repoint the bucket
    // slots that still hold its old pool id.
    const ModeIndex& index = pool_.coords(id);
    const auto& pos = pool_.bucket_pos(id);
    for (int m = 0; m < index.size(); ++m) {
      auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
      SNS_DCHECK(pos[m] < bucket.size() && bucket[pos[m]] == moved);
      bucket[pos[m]] = id;
    }
  }
}

}  // namespace sns
