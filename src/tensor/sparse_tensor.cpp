#include "tensor/sparse_tensor.h"

#include <cmath>

#include "common/serial.h"

namespace sns {

SparseTensor::SparseTensor(std::vector<int64_t> dims, int64_t expected_nnz)
    : dims_(std::move(dims)) {
  SNS_CHECK(!dims_.empty());
  SNS_CHECK(static_cast<int>(dims_.size()) <= kMaxTensorModes);
  buckets_.resize(dims_.size());
  for (size_t m = 0; m < dims_.size(); ++m) {
    SNS_CHECK(dims_[m] > 0);
    buckets_[m].resize(static_cast<size_t>(dims_[m]));
  }
  Reserve(expected_nnz);
}

void SparseTensor::Reserve(int64_t expected_nnz) {
  if (expected_nnz > 0) pool_.Reserve(static_cast<size_t>(expected_nnz));
}

double SparseTensor::Get(const ModeIndex& index) const {
  SNS_DCHECK(IndexInBounds(index));
  const uint32_t id = pool_.Find(index);
  return id == EntryPool::kInvalidId ? 0.0 : pool_.value(id);
}

double SparseTensor::Add(const ModeIndex& index, double delta) {
  SNS_DCHECK(IndexInBounds(index));
  const auto [id, inserted] = pool_.FindOrInsert(index, delta);
  if (inserted) {
    if (std::fabs(delta) < kZeroEpsilon) {
      // Net-zero insert: the entry is the pool tail and owns no bucket
      // slots yet, so EraseSwap alone undoes it.
      pool_.EraseSwap(id);
      return 0.0;
    }
    InsertIntoBuckets(id);
    return delta;
  }
  const double value = (pool_.value(id) += delta);
  if (std::fabs(value) < kZeroEpsilon) {
    EraseEntry(id);
    return 0.0;
  }
  return value;
}

void SparseTensor::Set(const ModeIndex& index, double value) {
  SNS_DCHECK(IndexInBounds(index));
  if (std::fabs(value) < kZeroEpsilon) {
    const uint32_t id = pool_.Find(index);
    if (id != EntryPool::kInvalidId) EraseEntry(id);
    return;
  }
  const auto [id, inserted] = pool_.FindOrInsert(index, value);
  if (inserted) {
    InsertIntoBuckets(id);
  } else {
    pool_.value(id) = value;
  }
}

void SparseTensor::Clear() {
  pool_.Clear();
  for (auto& mode_buckets : buckets_) {
    for (auto& bucket : mode_buckets) bucket.clear();
  }
}

double SparseTensor::FrobeniusNormSquared() const {
  double sum = 0.0;
  const uint32_t n = pool_.size();
  for (uint32_t id = 0; id < n; ++id) {
    const double v = pool_.value(id);
    sum += v * v;
  }
  return sum;
}

double SparseTensor::MaxAbsValue() const {
  double best = 0.0;
  const uint32_t n = pool_.size();
  for (uint32_t id = 0; id < n; ++id) {
    best = std::max(best, std::fabs(pool_.value(id)));
  }
  return best;
}

bool SparseTensor::IndexInBounds(const ModeIndex& index) const {
  if (index.size() != num_modes()) return false;
  for (int m = 0; m < index.size(); ++m) {
    if (index[m] < 0 || index[m] >= dims_[m]) return false;
  }
  return true;
}

void SparseTensor::InsertIntoBuckets(uint32_t id) {
  const ModeIndex& index = pool_.coords(id);
  auto& pos = pool_.bucket_pos(id);
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    pos[m] = static_cast<uint32_t>(bucket.size());
    bucket.push_back(id);
  }
}

void SparseTensor::RemoveFromBuckets(uint32_t id) {
  const ModeIndex& index = pool_.coords(id);
  const auto& pos = pool_.bucket_pos(id);
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    const uint32_t p = pos[m];
    SNS_DCHECK(p < bucket.size() && bucket[p] == id);
    const uint32_t last = static_cast<uint32_t>(bucket.size()) - 1;
    if (p != last) {
      // Swap-erase: relocate the tail id and fix its stored position.
      bucket[p] = bucket[last];
      pool_.bucket_pos(bucket[p])[m] = p;
    }
    bucket.pop_back();
  }
}

void SparseTensor::SerializeTo(serial::Writer& w) const {
  const int modes = num_modes();
  w.U32(static_cast<uint32_t>(modes));
  for (int m = 0; m < modes; ++m) w.I64(dims_[static_cast<size_t>(m)]);
  const uint32_t n = pool_.size();
  w.U64(n);
  for (uint32_t id = 0; id < n; ++id) {
    const ModeIndex& coords = pool_.coords(id);
    for (int m = 0; m < modes; ++m) w.I32(coords[m]);
    w.F64(pool_.value(id));
    const auto& pos = pool_.bucket_pos(id);
    for (int m = 0; m < modes; ++m) w.U32(pos[static_cast<size_t>(m)]);
  }
}

Status SparseTensor::RestoreFrom(serial::Reader& r) {
  if (nnz() != 0) {
    return Status::FailedPrecondition(
        "SparseTensor::RestoreFrom requires an empty tensor");
  }
  const int modes = num_modes();
  uint32_t stored_modes = 0;
  SNS_RETURN_IF_ERROR(r.U32(&stored_modes));
  if (static_cast<int>(stored_modes) != modes) {
    return Status::DataLoss("tensor mode count mismatch: stored " +
                            std::to_string(stored_modes) + ", expected " +
                            std::to_string(modes));
  }
  for (int m = 0; m < modes; ++m) {
    int64_t dim = 0;
    SNS_RETURN_IF_ERROR(r.I64(&dim));
    if (dim != dims_[static_cast<size_t>(m)]) {
      return Status::DataLoss("tensor shape mismatch in mode " +
                              std::to_string(m));
    }
  }
  uint64_t n = 0;
  SNS_RETURN_IF_ERROR(r.U64(&n));
  if (n > EntryPool::kInvalidId) {
    return Status::DataLoss("implausible tensor nnz " + std::to_string(n));
  }
  pool_.Reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    ModeIndex coords;
    for (int m = 0; m < modes; ++m) {
      int32_t c = 0;
      SNS_RETURN_IF_ERROR(r.I32(&c));
      coords.PushBack(c);
    }
    double value = 0.0;
    SNS_RETURN_IF_ERROR(r.F64(&value));
    if (!IndexInBounds(coords)) {
      return Status::DataLoss("tensor entry " + std::to_string(i) +
                              " out of bounds at " + coords.ToString());
    }
    if (std::fabs(value) < kZeroEpsilon || !std::isfinite(value)) {
      // A live tensor never stores near-zero or non-finite cells (Add/Set
      // erase below kZeroEpsilon), so such an entry marks corruption.
      return Status::DataLoss("tensor entry " + std::to_string(i) +
                              " holds an invalid value");
    }
    const auto [id, inserted] = pool_.FindOrInsert(coords, value);
    if (!inserted || id != static_cast<uint32_t>(i)) {
      return Status::DataLoss("duplicate tensor cell at " + coords.ToString());
    }
    auto& pos = pool_.bucket_pos(id);
    for (int m = 0; m < modes; ++m) {
      SNS_RETURN_IF_ERROR(r.U32(&pos[static_cast<size_t>(m)]));
    }
  }
  // Rebuild the per-(mode, index) buckets at the serialized positions: size
  // each bucket to its degree, then place every pool id at its recorded
  // slot, validating that the slots tile each bucket exactly.
  for (int m = 0; m < modes; ++m) {
    for (auto& bucket : buckets_[static_cast<size_t>(m)]) bucket.clear();
  }
  const uint32_t count = pool_.size();
  for (uint32_t id = 0; id < count; ++id) {
    const ModeIndex& coords = pool_.coords(id);
    for (int m = 0; m < modes; ++m) {
      buckets_[static_cast<size_t>(m)][static_cast<size_t>(coords[m])]
          .push_back(EntryPool::kInvalidId);
    }
  }
  for (uint32_t id = 0; id < count; ++id) {
    const ModeIndex& coords = pool_.coords(id);
    const auto& pos = pool_.bucket_pos(id);
    for (int m = 0; m < modes; ++m) {
      auto& bucket =
          buckets_[static_cast<size_t>(m)][static_cast<size_t>(coords[m])];
      const uint32_t p = pos[static_cast<size_t>(m)];
      if (p >= bucket.size() || bucket[p] != EntryPool::kInvalidId) {
        return Status::DataLoss("inconsistent bucket position for entry at " +
                                coords.ToString());
      }
      bucket[p] = id;
    }
  }
  return Status::OK();
}

void SparseTensor::EraseEntry(uint32_t id) {
  RemoveFromBuckets(id);
  const uint32_t moved = pool_.EraseSwap(id);
  if (moved != EntryPool::kInvalidId) {
    // The entry formerly at `moved` now lives at `id`; repoint the bucket
    // slots that still hold its old pool id.
    const ModeIndex& index = pool_.coords(id);
    const auto& pos = pool_.bucket_pos(id);
    for (int m = 0; m < index.size(); ++m) {
      auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
      SNS_DCHECK(pos[m] < bucket.size() && bucket[pos[m]] == moved);
      bucket[pos[m]] = id;
    }
  }
}

}  // namespace sns
