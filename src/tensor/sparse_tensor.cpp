#include "tensor/sparse_tensor.h"

#include <cmath>

namespace sns {

SparseTensor::SparseTensor(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  SNS_CHECK(!dims_.empty());
  SNS_CHECK(static_cast<int>(dims_.size()) <= kMaxTensorModes);
  buckets_.resize(dims_.size());
  for (size_t m = 0; m < dims_.size(); ++m) {
    SNS_CHECK(dims_[m] > 0);
    buckets_[m].resize(static_cast<size_t>(dims_[m]));
  }
}

double SparseTensor::Get(const ModeIndex& index) const {
  SNS_DCHECK(IndexInBounds(index));
  auto it = entries_.find(index);
  return it == entries_.end() ? 0.0 : it->second.value;
}

double SparseTensor::Add(const ModeIndex& index, double delta) {
  SNS_DCHECK(IndexInBounds(index));
  auto [it, inserted] = entries_.try_emplace(index);
  Entry& entry = it->second;
  if (inserted) {
    entry.value = delta;
    InsertIntoBuckets(index, entry);
  } else {
    entry.value += delta;
  }
  const double value = entry.value;
  if (std::fabs(value) < kZeroEpsilon) {
    RemoveFromBuckets(index, entry);
    entries_.erase(it);
    return 0.0;
  }
  return value;
}

void SparseTensor::Set(const ModeIndex& index, double value) {
  SNS_DCHECK(IndexInBounds(index));
  auto it = entries_.find(index);
  if (std::fabs(value) < kZeroEpsilon) {
    if (it != entries_.end()) {
      RemoveFromBuckets(index, it->second);
      entries_.erase(it);
    }
    return;
  }
  if (it != entries_.end()) {
    it->second.value = value;
    return;
  }
  auto [new_it, inserted] = entries_.try_emplace(index);
  (void)inserted;
  new_it->second.value = value;
  InsertIntoBuckets(index, new_it->second);
}

void SparseTensor::Clear() {
  entries_.clear();
  for (auto& mode_buckets : buckets_) {
    for (auto& bucket : mode_buckets) bucket.clear();
  }
}

void SparseTensor::ForEachNonzero(
    const std::function<void(const ModeIndex&, double)>& fn) const {
  for (const auto& [index, entry] : entries_) fn(index, entry.value);
}

double SparseTensor::FrobeniusNormSquared() const {
  double sum = 0.0;
  for (const auto& [index, entry] : entries_) sum += entry.value * entry.value;
  return sum;
}

double SparseTensor::MaxAbsValue() const {
  double best = 0.0;
  for (const auto& [index, entry] : entries_) {
    best = std::max(best, std::fabs(entry.value));
  }
  return best;
}

bool SparseTensor::IndexInBounds(const ModeIndex& index) const {
  if (index.size() != num_modes()) return false;
  for (int m = 0; m < index.size(); ++m) {
    if (index[m] < 0 || index[m] >= dims_[m]) return false;
  }
  return true;
}

void SparseTensor::InsertIntoBuckets(const ModeIndex& index, Entry& entry) {
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    entry.bucket_pos[m] = static_cast<uint32_t>(bucket.size());
    bucket.push_back(index);
  }
}

void SparseTensor::RemoveFromBuckets(const ModeIndex& index,
                                     const Entry& entry) {
  for (int m = 0; m < index.size(); ++m) {
    auto& bucket = buckets_[m][static_cast<size_t>(index[m])];
    const uint32_t pos = entry.bucket_pos[m];
    SNS_DCHECK(pos < bucket.size() && bucket[pos] == index);
    const uint32_t last = static_cast<uint32_t>(bucket.size()) - 1;
    if (pos != last) {
      // Swap-erase: relocate the last coordinate and fix its stored position.
      bucket[pos] = bucket[last];
      auto moved = entries_.find(bucket[pos]);
      SNS_DCHECK(moved != entries_.end());
      moved->second.bucket_pos[m] = pos;
    }
    bucket.pop_back();
  }
}

}  // namespace sns
