// Sparse COO tensor with per-(mode, index) slice buckets.
//
// This is the storage backing the continuous tensor window. Besides O(1)
// amortized point updates it maintains, for every mode m and index i, the
// list of non-zero coordinates whose m-th mode index is i. That gives the
// SliceNStitch updaters exactly the three operations they need in O(1)/O(k):
//   - deg(m, i)          — |X_(m)(i, :)|, Theorem 4's degree,
//   - slice iteration    — the sum over Ω^(m)_i in Eqs. 12 & 21,
//   - uniform sampling   — the θ-sample of SNS-RND / SNS+RND (Alg. 4 line 12).
// Buckets use swap-erase so removal is O(1); each entry remembers its
// position in all of its M buckets.

#ifndef SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_
#define SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "tensor/mode_index.h"

namespace sns {

/// Sparse tensor over a fixed dense shape. Cells not present are zero.
/// Entries whose magnitude drops below kZeroEpsilon after an update are
/// removed, so the continuous window's add-then-subtract event pairs do not
/// leak near-zero residue.
class SparseTensor {
 public:
  static constexpr double kZeroEpsilon = 1e-12;

  /// An empty tensor of the given shape (one extent per mode).
  explicit SparseTensor(std::vector<int64_t> dims);

  int num_modes() const { return static_cast<int>(dims_.size()); }
  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t dim(int mode) const { return dims_[mode]; }

  /// Number of non-zero cells.
  int64_t nnz() const { return static_cast<int64_t>(entries_.size()); }

  /// Value at a cell (0.0 when absent).
  double Get(const ModeIndex& index) const;

  /// Adds `delta` to a cell, creating or erasing the entry as needed.
  /// Returns the new value of the cell.
  double Add(const ModeIndex& index, double delta);

  /// Sets a cell to an exact value (erases it when |value| < kZeroEpsilon).
  void Set(const ModeIndex& index, double value);

  /// Removes every entry.
  void Clear();

  /// deg(m, i): number of non-zeros whose m-th mode index is i.
  int64_t Degree(int mode, int64_t index) const {
    return static_cast<int64_t>(buckets_[mode][index].size());
  }

  /// Coordinates of all non-zeros with the m-th mode index fixed to i.
  /// The reference is invalidated by any mutation of the tensor.
  const std::vector<ModeIndex>& SliceNonzeros(int mode, int64_t index) const {
    return buckets_[mode][index];
  }

  /// Invokes fn(coordinate, value) for every non-zero (unspecified order).
  void ForEachNonzero(
      const std::function<void(const ModeIndex&, double)>& fn) const;

  /// Σ x² over non-zeros.
  double FrobeniusNormSquared() const;

  /// Largest |x| over non-zeros (0 when empty).
  double MaxAbsValue() const;

  /// True if `index` has num_modes() coordinates all within the shape.
  bool IndexInBounds(const ModeIndex& index) const;

 private:
  struct Entry {
    double value;
    // Position of this coordinate inside buckets_[m][coord[m]] per mode.
    std::array<uint32_t, kMaxTensorModes> bucket_pos;
  };

  void InsertIntoBuckets(const ModeIndex& index, Entry& entry);
  void RemoveFromBuckets(const ModeIndex& index, const Entry& entry);

  std::vector<int64_t> dims_;
  std::unordered_map<ModeIndex, Entry, ModeIndexHash> entries_;
  // buckets_[m][i] lists the coordinates of non-zeros with m-th index i.
  std::vector<std::vector<std::vector<ModeIndex>>> buckets_;
};

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_
