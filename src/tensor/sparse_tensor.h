// Sparse COO tensor over a flat entry pool with per-(mode, index) buckets.
//
// Storage layout (see tensor/entry_pool.h): non-zeros live in one contiguous
// SoA pool addressed by dense uint32_t ids; an open-addressed hash index
// maps coordinate → id; and for every mode m and index i, buckets_[m][i]
// lists the *pool ids* (not coordinate copies) of the non-zeros whose m-th
// mode index is i. Each pool entry carries its position inside all of its M
// buckets, so bucket removal is swap-erase O(1) and pool erasure is
// swap-with-last O(M). That gives the SliceNStitch updaters exactly the
// operations they need at the cost bounds of Theorems 1-4:
//   - deg(m, i)          — |X_(m)(i, :)|, Theorem 4's degree, O(1),
//   - slice iteration    — the sum over Ω^(m)_i in Eqs. 12 & 21, hash-free
//                          and value-carrying via Slice(),
//   - point updates      — O(M) amortized via the pool index,
//   - uniform sampling   — the θ-sample of SNS-RND / SNS+RND (Alg. 4).
//
// Iteration invalidation rules: Slice() views and entry references are
// invalidated by ANY mutation (Add/Set/Clear/Reserve) — erasure swaps
// arbitrary entries into freed ids and growth reallocates the pool arrays.
// ForEachNonzero visits entries in unspecified order and must not mutate
// the tensor from inside the callback.

#ifndef SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_
#define SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tensor/entry_pool.h"
#include "tensor/mode_index.h"

namespace sns {

namespace serial {
class Writer;
class Reader;
}  // namespace serial

/// Sparse tensor over a fixed dense shape. Cells not present are zero.
/// Entries whose magnitude drops below kZeroEpsilon after an update are
/// removed, so the continuous window's add-then-subtract event pairs do not
/// leak near-zero residue.
class SparseTensor {
 public:
  static constexpr double kZeroEpsilon = 1e-12;

  /// An empty tensor of the given shape (one extent per mode).
  /// `expected_nnz` (optional) pre-sizes the pool and hash index so bulk
  /// ingestion avoids rehash/realloc storms.
  explicit SparseTensor(std::vector<int64_t> dims, int64_t expected_nnz = 0);

  /// Pre-sizes storage for `expected_nnz` entries (never shrinks).
  void Reserve(int64_t expected_nnz);

  int num_modes() const { return static_cast<int>(dims_.size()); }
  const std::vector<int64_t>& dims() const { return dims_; }
  int64_t dim(int mode) const { return dims_[mode]; }

  /// Number of non-zero cells.
  int64_t nnz() const { return static_cast<int64_t>(pool_.size()); }

  /// Value at a cell (0.0 when absent).
  double Get(const ModeIndex& index) const;

  /// Adds `delta` to a cell, creating or erasing the entry as needed.
  /// Returns the new value of the cell.
  double Add(const ModeIndex& index, double delta);

  /// Sets a cell to an exact value (erases it when |value| < kZeroEpsilon).
  void Set(const ModeIndex& index, double value);

  /// Removes every entry.
  void Clear();

  /// deg(m, i): number of non-zeros whose m-th mode index is i.
  int64_t Degree(int mode, int64_t index) const {
    return static_cast<int64_t>(buckets_[mode][index].size());
  }

  /// One (coordinate, value) pair of a slice or pool walk.
  struct SliceEntry {
    const ModeIndex& coords;
    double value;
  };

  /// Forward iterator over a bucket of pool ids, dereferencing straight into
  /// the pool — no coordinate copies, no hash lookups.
  class SliceIterator {
   public:
    SliceIterator(const EntryPool* pool, const uint32_t* id)
        : pool_(pool), id_(id) {}
    SliceEntry operator*() const {
      return {pool_->coords(*id_), pool_->value(*id_)};
    }
    SliceIterator& operator++() {
      ++id_;
      return *this;
    }
    friend bool operator==(const SliceIterator& a, const SliceIterator& b) {
      return a.id_ == b.id_;
    }
    friend bool operator!=(const SliceIterator& a, const SliceIterator& b) {
      return a.id_ != b.id_;
    }

   private:
    const EntryPool* pool_;
    const uint32_t* id_;
  };

  /// Value-carrying view of the non-zeros with the m-th mode index fixed to
  /// i (unspecified order). Invalidated by any mutation of the tensor.
  class SliceView {
   public:
    SliceView(const EntryPool* pool, const std::vector<uint32_t>* ids)
        : pool_(pool), ids_(ids) {}
    size_t size() const { return ids_->size(); }
    bool empty() const { return ids_->empty(); }
    SliceIterator begin() const { return {pool_, ids_->data()}; }
    SliceIterator end() const { return {pool_, ids_->data() + ids_->size()}; }

   private:
    const EntryPool* pool_;
    const std::vector<uint32_t>* ids_;
  };

  /// The slice Ω^(mode)_index as a (coords, value) range.
  SliceView Slice(int mode, int64_t index) const {
    return SliceView(&pool_, &buckets_[mode][index]);
  }

  /// Invokes fn(coordinate, value) for every non-zero (unspecified order).
  /// A linear walk over the pool arrays; fn must not mutate the tensor.
  template <typename Fn>
  void ForEachNonzero(Fn&& fn) const {
    const uint32_t n = pool_.size();
    for (uint32_t id = 0; id < n; ++id) fn(pool_.coords(id), pool_.value(id));
  }

  /// Σ x² over non-zeros.
  double FrobeniusNormSquared() const;

  /// Largest |x| over non-zeros (0 when empty).
  double MaxAbsValue() const;

  /// True if `index` has num_modes() coordinates all within the shape.
  bool IndexInBounds(const ModeIndex& index) const;

  /// Probe sequences performed against the coordinate hash index so far.
  /// Regression instrumentation: slice iteration must leave this unchanged.
  uint64_t hash_lookup_count() const { return pool_.hash_lookup_count(); }

  /// Serializes the non-zeros INCLUDING their storage layout — entries in
  /// pool-id order, each with its per-mode bucket positions — so a restored
  /// tensor walks its pool and slices in the identical order. Iteration
  /// order feeds the accumulation order of MTTKRP and slice sums, so layout
  /// fidelity is what makes restored factor trajectories bitwise equal to
  /// the uninterrupted run (durability contract).
  void SerializeTo(serial::Writer& w) const;

  /// Restores into this tensor, which must be empty and of the serialized
  /// shape. Rebuilds pool order, hash index, and bucket layout exactly.
  /// Corrupt input (out-of-bounds coordinates, duplicate cells, inconsistent
  /// bucket positions) fails with kDataLoss, leaving the tensor
  /// unspecified-but-safe.
  Status RestoreFrom(serial::Reader& r);

 private:
  void InsertIntoBuckets(uint32_t id);
  void RemoveFromBuckets(uint32_t id);
  void EraseEntry(uint32_t id);

  std::vector<int64_t> dims_;
  EntryPool pool_;
  // buckets_[m][i] lists pool ids of non-zeros with m-th index i.
  std::vector<std::vector<std::vector<uint32_t>>> buckets_;
};

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_SPARSE_TENSOR_H_
