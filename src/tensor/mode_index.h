// Fixed-capacity multi-mode index: the coordinate of one tensor cell.
//
// SliceNStitch tensors have 3–5 modes (the paper's datasets have 3 or 4), so
// coordinates are stored inline — no heap allocation per non-zero — with a
// hard cap of kMaxTensorModes modes.

#ifndef SLICENSTITCH_TENSOR_MODE_INDEX_H_
#define SLICENSTITCH_TENSOR_MODE_INDEX_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/check.h"

namespace sns {

/// Maximum tensor order supported by the library.
inline constexpr int kMaxTensorModes = 8;

/// Coordinate of a tensor cell: `size()` mode indices, each 0-based.
class ModeIndex {
 public:
  ModeIndex() : size_(0) { dims_.fill(0); }

  ModeIndex(std::initializer_list<int32_t> values) : ModeIndex() {
    SNS_CHECK(values.size() <= kMaxTensorModes);
    for (int32_t v : values) dims_[size_++] = v;
  }

  int size() const { return size_; }

  int32_t operator[](int mode) const {
    SNS_DCHECK(mode >= 0 && mode < size_);
    return dims_[mode];
  }
  int32_t& operator[](int mode) {
    SNS_DCHECK(mode >= 0 && mode < size_);
    return dims_[mode];
  }

  /// Appends one more mode index.
  void PushBack(int32_t value) {
    SNS_CHECK(size_ < kMaxTensorModes);
    dims_[size_++] = value;
  }

  /// Returns a copy with `value` appended (e.g. non-time index + time index).
  ModeIndex WithAppended(int32_t value) const {
    ModeIndex out = *this;
    out.PushBack(value);
    return out;
  }

  friend bool operator==(const ModeIndex& a, const ModeIndex& b) {
    if (a.size_ != b.size_) return false;
    for (int m = 0; m < a.size_; ++m) {
      if (a.dims_[m] != b.dims_[m]) return false;
    }
    return true;
  }

  /// "(i, j, k)" rendering for logs and test failures.
  std::string ToString() const {
    std::string out = "(";
    for (int m = 0; m < size_; ++m) {
      if (m > 0) out += ", ";
      out += std::to_string(dims_[m]);
    }
    out += ")";
    return out;
  }

 private:
  std::array<int32_t, kMaxTensorModes> dims_;
  int size_;
};

/// FNV-1a over the active modes; good enough dispersion for open-addressed
/// and bucketed hash maps alike.
struct ModeIndexHash {
  size_t operator()(const ModeIndex& index) const {
    uint64_t h = 1469598103934665603ULL;
    for (int m = 0; m < index.size(); ++m) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(index[m]));
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace sns

#endif  // SLICENSTITCH_TENSOR_MODE_INDEX_H_
