#include "apps/anomaly_detection.h"

#include <algorithm>
#include <cmath>

namespace sns {

double RunningZScore::Score(double value) const {
  if (count_ < 2) return 0.0;
  const double var = variance();
  if (var <= 0.0) return 0.0;
  return (value - mean_) / std::sqrt(var);
}

void RunningZScore::Update(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningZScore::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

DataStream InjectAnomalies(const DataStream& stream, int count,
                           double magnitude, int64_t after_time, Rng& rng,
                           std::vector<InjectedAnomaly>* injected) {
  SNS_CHECK(injected != nullptr);
  injected->clear();
  const int64_t end_time = stream.end_time();
  SNS_CHECK(after_time < end_time);

  std::vector<Tuple> spikes;
  spikes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Tuple spike;
    for (int64_t dim : stream.mode_dims()) {
      spike.index.PushBack(static_cast<int32_t>(rng.UniformInt(0, dim - 1)));
    }
    spike.value = magnitude;
    spike.time = rng.UniformInt(after_time + 1, end_time);
    spikes.push_back(spike);
    injected->push_back({spike, spike.time});
  }
  std::sort(spikes.begin(), spikes.end(),
            [](const Tuple& a, const Tuple& b) { return a.time < b.time; });
  std::sort(injected->begin(), injected->end(),
            [](const InjectedAnomaly& a, const InjectedAnomaly& b) {
              return a.injection_time < b.injection_time;
            });

  // Merge by time (spikes after equal-time originals).
  DataStream merged(stream.mode_dims());
  merged.Reserve(stream.size() + count);
  size_t spike_pos = 0;
  for (const Tuple& tuple : stream.tuples()) {
    while (spike_pos < spikes.size() &&
           spikes[spike_pos].time < tuple.time) {
      SNS_CHECK(merged.Append(spikes[spike_pos++]).ok());
    }
    SNS_CHECK(merged.Append(tuple).ok());
  }
  while (spike_pos < spikes.size()) {
    SNS_CHECK(merged.Append(spikes[spike_pos++]).ok());
  }
  return merged;
}

void LabelDetections(const std::vector<InjectedAnomaly>& injected,
                     int64_t time_slack, std::vector<Detection>* detections) {
  SNS_CHECK(detections != nullptr);
  for (Detection& detection : *detections) {
    detection.is_injected = false;
    for (const InjectedAnomaly& anomaly : injected) {
      if (!(anomaly.tuple.index == detection.index)) continue;
      if (detection.event_time >= anomaly.injection_time &&
          detection.event_time <= anomaly.injection_time + time_slack) {
        detection.is_injected = true;
        break;
      }
    }
  }
}

namespace {

std::vector<const Detection*> TopKByZ(const std::vector<Detection>& detections,
                                      int k) {
  std::vector<const Detection*> sorted;
  sorted.reserve(detections.size());
  for (const Detection& d : detections) sorted.push_back(&d);
  std::sort(sorted.begin(), sorted.end(),
            [](const Detection* a, const Detection* b) {
              return a->z_score > b->z_score;
            });
  if (static_cast<int>(sorted.size()) > k) {
    sorted.resize(static_cast<size_t>(k));
  }
  return sorted;
}

}  // namespace

double PrecisionAtTopK(const std::vector<Detection>& detections, int k) {
  if (k <= 0) return 0.0;
  const auto top = TopKByZ(detections, k);
  if (top.empty()) return 0.0;
  int hits = 0;
  for (const Detection* d : top) hits += d->is_injected ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanDetectionDelay(const std::vector<InjectedAnomaly>& injected,
                          const std::vector<Detection>& detections, int k,
                          double miss_penalty) {
  if (injected.empty()) return 0.0;
  const auto top = TopKByZ(detections, k);
  double total = 0.0;
  for (const InjectedAnomaly& anomaly : injected) {
    double best = miss_penalty;
    for (const Detection* d : top) {
      if (!d->is_injected) continue;
      if (!(d->index == anomaly.tuple.index)) continue;
      if (d->event_time < anomaly.injection_time) continue;
      best = std::min(
          best, static_cast<double>(d->event_time - anomaly.injection_time));
    }
    total += best;
  }
  return total / static_cast<double>(injected.size());
}

}  // namespace sns
