// Anomaly detection on tensor streams (§VI-G / Fig. 9).
//
// The detector flags events whose reconstruction error — the gap between the
// arriving value and the CP model's prediction for that cell — is an outlier
// under a running z-score. SliceNStitch scores every arrival the moment it
// happens; conventional methods can only score a whole tensor unit once its
// period closes, which is exactly the detection-latency gap Fig. 9 measures.

#ifndef SLICENSTITCH_APPS_ANOMALY_DETECTION_H_
#define SLICENSTITCH_APPS_ANOMALY_DETECTION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "stream/data_stream.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// Streaming mean/variance (Welford) with z-score queries.
class RunningZScore {
 public:
  /// z-score of `value` under the statistics accumulated so far (0 until two
  /// observations exist or the variance is degenerate).
  double Score(double value) const;

  /// Adds an observation.
  void Update(double value);

  /// Score-then-update convenience.
  double ScoreAndUpdate(double value) {
    const double z = Score(value);
    Update(value);
    return z;
  }

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// One injected anomaly: a spike tuple added to the stream.
struct InjectedAnomaly {
  Tuple tuple;
  int64_t injection_time = 0;
};

/// A scored detection produced by a detector.
struct Detection {
  int64_t event_time = 0;      // When the detector saw the data.
  ModeIndex index;             // Non-time mode indices of the cell.
  double z_score = 0.0;
  bool is_injected = false;    // Ground truth (filled by the evaluation).
};

/// Injects `count` spike tuples of value `magnitude` at uniformly random
/// times in (after_time, stream end], at uniformly random indices. Returns
/// the merged chronological stream; `injected` receives the ground truth.
DataStream InjectAnomalies(const DataStream& stream, int count,
                           double magnitude, int64_t after_time, Rng& rng,
                           std::vector<InjectedAnomaly>* injected);

/// Marks each detection as injected if it matches an injected anomaly's
/// non-time indices and its event_time is at or after the injection (within
/// `time_slack` time units). Each injection is matched at most once per
/// detection list.
void LabelDetections(const std::vector<InjectedAnomaly>& injected,
                     int64_t time_slack, std::vector<Detection>* detections);

/// Precision of the top-k detections by z-score (= recall when k equals the
/// number of injected anomalies, as in the paper's setup).
double PrecisionAtTopK(const std::vector<Detection>& detections, int k);

/// Mean gap between injection time and the earliest top-k detection that
/// matches it; unmatched injections contribute `miss_penalty`.
double MeanDetectionDelay(const std::vector<InjectedAnomaly>& injected,
                          const std::vector<Detection>& detections, int k,
                          double miss_penalty);

}  // namespace sns

#endif  // SLICENSTITCH_APPS_ANOMALY_DETECTION_H_
