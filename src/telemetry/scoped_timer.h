// Monotonic-clock timing helpers for the telemetry layer.
//
// MonotonicNanos() reads std::chrono::steady_clock — immune to wall-clock
// steps — and ScopedTimer records the elapsed nanoseconds of a scope into a
// LatencyHistogram on destruction. Both are null-tolerant: constructed with a
// null histogram (telemetry disabled) the timer never touches the clock, so
// the disabled cost of an instrumented scope is one pointer test.

#ifndef SLICENSTITCH_TELEMETRY_SCOPED_TIMER_H_
#define SLICENSTITCH_TELEMETRY_SCOPED_TIMER_H_

#include <chrono>
#include <cstdint>

#include "telemetry/histogram.h"

namespace sns {
namespace telemetry {

/// Nanoseconds on the monotonic (steady) clock. The absolute value is
/// meaningless; only differences are.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Records the lifetime of the object, in nanoseconds, into `histogram` when
/// non-null. With a null histogram the constructor and destructor are both a
/// single branch — no clock read.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* histogram)
      : histogram_(histogram),
        start_ns_(histogram != nullptr ? MonotonicNanos() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNanos() - start_ns_);
    }
  }

  /// Nanoseconds since construction (0 when constructed disabled).
  int64_t ElapsedNanos() const {
    return histogram_ != nullptr ? MonotonicNanos() - start_ns_ : 0;
  }

 private:
  LatencyHistogram* histogram_;
  int64_t start_ns_;
};

}  // namespace telemetry
}  // namespace sns

#endif  // SLICENSTITCH_TELEMETRY_SCOPED_TIMER_H_
