// Lock-free metric primitives: cache-line-padded relaxed-atomic counters and
// gauges.
//
// These are the cheapest observable quantities the telemetry layer offers:
// recording is a single relaxed fetch_add, and each instrument occupies its
// own cache line so two shards bumping adjacent counters never false-share.
// Reads are relaxed too — metrics are monotone tallies, not synchronization;
// a reader sees values at most one in-flight increment stale, which is the
// documented consistency level of every snapshot surface built on top
// (telemetry/metrics_registry.h).

#ifndef SLICENSTITCH_TELEMETRY_COUNTERS_H_
#define SLICENSTITCH_TELEMETRY_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace sns {
namespace telemetry {

/// One cache line: instruments are padded to this so concurrent writers on
/// different instruments never contend for the same line.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Monotone event tally. Add is one relaxed fetch_add — the whole cost of a
/// counted hot-path event when telemetry is enabled.
struct alignas(kCacheLineBytes) Counter {
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Signed level with a high-water mark (e.g. queue depth). Add updates the
/// level with one relaxed fetch_add; a positive delta also advances the peak
/// via a compare-exchange loop that only iterates while the level is actually
/// making new highs (rare in steady state).
struct alignas(kCacheLineBytes) Gauge {
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) {
    const int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) +
                        delta;
    if (delta > 0) {
      int64_t peak = peak_.load(std::memory_order_relaxed);
      while (now > peak &&
             !peak_.compare_exchange_weak(peak, now,
                                          std::memory_order_relaxed)) {
      }
    }
  }

  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  int64_t Peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

static_assert(alignof(Counter) >= kCacheLineBytes);
static_assert(alignof(Gauge) >= kCacheLineBytes);

}  // namespace telemetry
}  // namespace sns

#endif  // SLICENSTITCH_TELEMETRY_COUNTERS_H_
