// JSON-lines export of service metrics snapshots, for offline analysis.
//
// Each snapshot serializes to a single line of JSON — scalars plus percentile
// summaries of every histogram (the raw bucket arrays are not exported) —
// so a capture file can be streamed through `jq`, pandas, or a plotting
// script one record at a time. ToJsonLine is the pure formatter;
// JsonLinesExporter owns an append-to-file loop around it and is what the
// SnsService periodic exporter drives.

#ifndef SLICENSTITCH_TELEMETRY_JSON_EXPORTER_H_
#define SLICENSTITCH_TELEMETRY_JSON_EXPORTER_H_

#include <cstdint>
#include <string>

#include "common/serial.h"
#include "common/status.h"
#include "telemetry/metrics_registry.h"

namespace sns {
namespace telemetry {

/// Formats one snapshot as a single JSON object (no trailing newline).
/// `timestamp_ms` is stamped verbatim into a "ts_ms" field; pass the wall
/// clock (milliseconds since the Unix epoch) or 0 when irrelevant.
std::string ToJsonLine(const ServiceMetricsSnapshot& snapshot,
                       int64_t timestamp_ms);

/// Appends JSON-lines records to a file. The file is truncated at Open and
/// flushed after every record, so a capture survives an ungraceful exit up
/// to the last complete line. Move-only.
class JsonLinesExporter {
 public:
  static StatusOr<JsonLinesExporter> Open(const std::string& path);

  JsonLinesExporter(JsonLinesExporter&&) = default;
  JsonLinesExporter& operator=(JsonLinesExporter&&) = default;

  /// Writes one snapshot as a line, stamped with the current wall clock.
  Status Append(const ServiceMetricsSnapshot& snapshot);

  /// Flushes and closes. Idempotent.
  Status Close();

 private:
  explicit JsonLinesExporter(serial::FileSink sink) : sink_(std::move(sink)) {}

  serial::FileSink sink_;
};

}  // namespace telemetry
}  // namespace sns

#endif  // SLICENSTITCH_TELEMETRY_JSON_EXPORTER_H_
