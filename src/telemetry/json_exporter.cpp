#include "telemetry/json_exporter.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string_view>

namespace sns {
namespace telemetry {
namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendField(std::string_view key, uint64_t value, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%" PRIu64 ",",
                static_cast<int>(key.size()), key.data(), value);
  out->append(buf);
}

void AppendField(std::string_view key, int64_t value, std::string* out) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%.*s\":%" PRId64 ",",
                static_cast<int>(key.size()), key.data(), value);
  out->append(buf);
}

/// {"count":N,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
///  "p999":..}
void AppendHistogram(std::string_view key, const HistogramSnapshot& h,
                     std::string* out) {
  out->push_back('"');
  out->append(key);
  out->append("\":{");
  AppendField("count", h.count, out);
  AppendField("min", h.min, out);
  AppendField("max", h.max, out);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"mean\":%.1f,", h.Mean());
  out->append(buf);
  AppendField("p50", h.Percentile(0.50), out);
  AppendField("p90", h.Percentile(0.90), out);
  AppendField("p99", h.Percentile(0.99), out);
  AppendField("p999", h.Percentile(0.999), out);
  out->pop_back();  // trailing comma
  out->append("},");
}

}  // namespace

std::string ToJsonLine(const ServiceMetricsSnapshot& snapshot,
                       int64_t timestamp_ms) {
  std::string out;
  out.reserve(1024);
  out.push_back('{');
  AppendField("ts_ms", timestamp_ms, &out);
  AppendHistogram("ingest_latency_ns", snapshot.ingest_latency_ns, &out);
  AppendHistogram("apply_ns", snapshot.apply_ns, &out);
  out.append("\"shards\":[");
  for (const ShardMetricsSnapshot& s : snapshot.shards) {
    out.push_back('{');
    AppendField("shard", static_cast<int64_t>(s.shard), &out);
    AppendField("tasks_executed", s.tasks_executed, &out);
    AppendField("mailbox_pushes", s.mailbox_pushes, &out);
    AppendField("mailbox_blocked", s.mailbox_blocked, &out);
    AppendField("mailbox_rejected", s.mailbox_rejected, &out);
    AppendField("mailbox_deadline_exceeded", s.mailbox_deadline_exceeded,
                &out);
    AppendField("queue_depth", s.queue_depth, &out);
    AppendField("queue_depth_peak", s.queue_depth_peak, &out);
    AppendHistogram("apply_ns", s.apply_ns, &out);
    AppendHistogram("ingest_latency_ns", s.ingest_latency_ns, &out);
    out.pop_back();
    out.append("},");
  }
  if (!snapshot.shards.empty()) out.pop_back();
  out.append("],\"streams\":[");
  for (const StreamMetricsSnapshot& s : snapshot.streams) {
    out.append("{\"name\":\"");
    AppendEscaped(s.name, &out);
    out.append("\",");
    AppendField("shard", static_cast<int64_t>(s.shard), &out);
    AppendField("tuples_ingested", s.tuples_ingested, &out);
    AppendField("batches_applied", s.batches_applied, &out);
    AppendField("admission_rejects", s.admission_rejects, &out);
    AppendField("quarantines", s.quarantines, &out);
    AppendField("recoveries", s.recoveries, &out);
    AppendField("journal_appends", s.journal_appends, &out);
    AppendField("journal_bytes", s.journal_bytes, &out);
    AppendField("journal_rotations", s.journal_rotations, &out);
    AppendField("checkpoint_writes", s.checkpoint_writes, &out);
    AppendField("checkpoint_bytes", s.checkpoint_bytes, &out);
    AppendField("outlier_captures", s.outlier_captures, &out);
    AppendField("outlier_evictions", s.outlier_evictions, &out);
    AppendHistogram("journal_append_ns", s.journal_append_ns, &out);
    AppendHistogram("checkpoint_write_ns", s.checkpoint_write_ns, &out);
    AppendHistogram("loss_update_ns", s.loss_update_ns, &out);
    out.pop_back();
    out.append("},");
  }
  if (!snapshot.streams.empty()) out.pop_back();
  out.append("]}");
  return out;
}

StatusOr<JsonLinesExporter> JsonLinesExporter::Open(const std::string& path) {
  StatusOr<serial::FileSink> sink = serial::FileSink::Open(path);
  if (!sink.ok()) return sink.status();
  return JsonLinesExporter(std::move(sink).value());
}

Status JsonLinesExporter::Append(const ServiceMetricsSnapshot& snapshot) {
  const int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string line = ToJsonLine(snapshot, now_ms);
  line.push_back('\n');
  Status status = sink_.Write(line.data(), line.size());
  if (!status.ok()) return status;
  return sink_.Flush();
}

Status JsonLinesExporter::Close() { return sink_.Close(); }

}  // namespace telemetry
}  // namespace sns
