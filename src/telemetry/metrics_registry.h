// MetricsRegistry: the telemetry domains owned by a running SnsService.
//
// Two kinds of domain:
//   - ShardMetrics, one per worker shard (or one for the inline service):
//     the hot-path instruments — mailbox traffic, queue depth, per-task
//     apply time, ingest-to-ticket latency.
//   - StreamMetrics, one per registered stream: ingest/journal/checkpoint
//     and health tallies, attributed to the shard the stream is pinned to.
//
// Lifetime contract: domains are heap-allocated at registration and NEVER
// freed or moved until the registry itself dies. Instrumentation sites hold
// raw ShardMetrics* / StreamMetrics* and record without any lock; removing a
// stream from the service leaves its metrics domain in place (re-creating a
// stream under the same name reuses the old domain and re-pins its shard).
// Histogram storage is inline in the domain structs, so nothing on the
// record path allocates.
//
// Snapshots are relaxed reads: each counter is read atomically, but a
// snapshot taken while recorders run may interleave between instruments.
// SnsService::Metrics layers sequence-consistency on top by draining the
// shards first.

#ifndef SLICENSTITCH_TELEMETRY_METRICS_REGISTRY_H_
#define SLICENSTITCH_TELEMETRY_METRICS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/counters.h"
#include "telemetry/histogram.h"

namespace sns {
namespace telemetry {

/// Hot-path instruments for one worker shard (or the inline executor).
struct ShardMetrics {
  /// Tasks run to completion on the shard (queries and barriers included).
  Counter tasks_executed;
  /// Successful mailbox pushes.
  Counter mailbox_pushes;
  /// Pushes that found the mailbox full and waited (block policy).
  Counter mailbox_blocked;
  /// Pushes refused outright with the queue full (reject policy).
  Counter mailbox_rejected;
  /// Pushes abandoned because their deadline expired while waiting.
  Counter mailbox_deadline_exceeded;
  /// Tasks currently queued; Peak() is the high-water mark.
  Gauge queue_depth;
  /// Wall time of each task executed on the shard, nanoseconds.
  LatencyHistogram apply_ns;
  /// Submission (ticket issue) to completion, nanoseconds — includes any
  /// backpressure wait and queueing delay.
  LatencyHistogram ingest_latency_ns;
};

/// Per-stream instruments, attributed to the stream's pinned shard.
struct StreamMetrics {
  /// Pinned shard index (0 for the inline service). Written at registration
  /// under the registry lock; snapshot-read under the same lock.
  int shard = 0;
  Counter tuples_ingested;
  Counter batches_applied;
  Counter admission_rejects;
  Counter quarantines;
  Counter recoveries;
  Counter journal_appends;
  Counter journal_bytes;
  Counter journal_rotations;
  Counter checkpoint_writes;
  Counter checkpoint_bytes;
  /// Robust-mode tallies (losses/outlier_store.h): arrivals that diverted
  /// mass into the sparse outlier structure S, and entries displaced from a
  /// full S. Both stay 0 when robust mode is off.
  Counter outlier_captures;
  Counter outlier_evictions;
  /// Write-ahead append latency (includes per-record fsync when the journal
  /// is configured with sync_each_record), nanoseconds.
  LatencyHistogram journal_append_ns;
  /// Full checkpoint write: serialize + write + fsync + rename, nanoseconds.
  LatencyHistogram checkpoint_write_ns;
  /// Wall time of each applied mutation on streams running a generalized
  /// (non-Gaussian) loss or robust mode, nanoseconds — the per-loss update
  /// cost next to the shard-wide apply_ns.
  LatencyHistogram loss_update_ns;
};

/// Point-in-time copy of one shard domain.
struct ShardMetricsSnapshot {
  int shard = 0;
  uint64_t tasks_executed = 0;
  uint64_t mailbox_pushes = 0;
  uint64_t mailbox_blocked = 0;
  uint64_t mailbox_rejected = 0;
  uint64_t mailbox_deadline_exceeded = 0;
  int64_t queue_depth = 0;
  int64_t queue_depth_peak = 0;
  HistogramSnapshot apply_ns;
  HistogramSnapshot ingest_latency_ns;
};

/// Point-in-time copy of one stream domain. Also the payload of the periodic
/// EventSink::OnMetrics callback.
struct StreamMetricsSnapshot {
  std::string name;
  int shard = 0;
  uint64_t tuples_ingested = 0;
  uint64_t batches_applied = 0;
  uint64_t admission_rejects = 0;
  uint64_t quarantines = 0;
  uint64_t recoveries = 0;
  uint64_t journal_appends = 0;
  uint64_t journal_bytes = 0;
  uint64_t journal_rotations = 0;
  uint64_t checkpoint_writes = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t outlier_captures = 0;
  uint64_t outlier_evictions = 0;
  HistogramSnapshot journal_append_ns;
  HistogramSnapshot checkpoint_write_ns;
  HistogramSnapshot loss_update_ns;
};

/// The full service view: every shard, every stream (sorted by name), plus
/// the cross-shard merges of the two hot-path histograms.
struct ServiceMetricsSnapshot {
  std::vector<ShardMetricsSnapshot> shards;
  std::vector<StreamMetricsSnapshot> streams;
  /// ingest_latency_ns merged across all shards.
  HistogramSnapshot ingest_latency_ns;
  /// apply_ns merged across all shards.
  HistogramSnapshot apply_ns;
};

class MetricsRegistry {
 public:
  /// Creates `num_shards` shard domains (>= 1; the inline service uses one).
  explicit MetricsRegistry(int num_shards);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Stable pointer; valid for the registry's lifetime.
  ShardMetrics& shard(int index) { return *shards_[index]; }

  /// Returns the stream's domain, creating it on first registration. The
  /// pointer is stable for the registry's lifetime; re-registering an
  /// existing name reuses the domain (tallies survive stream re-creation)
  /// and re-pins its shard.
  StreamMetrics* RegisterStream(std::string_view name, int shard);

  /// Copies every domain. Consistent per-instrument, relaxed across
  /// instruments; see the file comment.
  ServiceMetricsSnapshot Snapshot() const;

 private:
  std::vector<std::unique_ptr<ShardMetrics>> shards_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<StreamMetrics>, std::less<>> streams_;
};

}  // namespace telemetry
}  // namespace sns

#endif  // SLICENSTITCH_TELEMETRY_METRICS_REGISTRY_H_
