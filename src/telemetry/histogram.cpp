#include "telemetry/histogram.h"

#include <algorithm>
#include <cmath>

namespace sns {
namespace telemetry {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  sum += other.sum;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
}

int64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::clamp<uint64_t>(rank, 1, count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      const int64_t representative = LatencyHistogram::BucketLowerBound(i) +
                                     LatencyHistogram::BucketWidth(i) / 2;
      return std::clamp(representative, min, max);
    }
  }
  return max;  // unreachable when count == sum of buckets
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = n;
    total += n;
  }
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (total == 0) {
    snap.min = 0;
    snap.max = 0;
    snap.sum = 0;
    return snap;
  }
  const int64_t min = min_.load(std::memory_order_relaxed);
  const int64_t max = max_.load(std::memory_order_relaxed);
  // A snapshot racing the very first Record can see a bucket tally before
  // the extremes land; fall back to neutral values rather than INT64_MAX.
  snap.min = min == INT64_MAX ? 0 : min;
  snap.max = max < 0 ? 0 : max;
  return snap;
}

}  // namespace telemetry
}  // namespace sns
