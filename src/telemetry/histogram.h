// Fixed-footprint log-bucketed latency histogram with lock-free recording
// and mergeable snapshots.
//
// Layout (HDR-style log-linear): values 0..15 get exact unit buckets; above
// that each power-of-two octave is split into 16 linear sub-buckets, so the
// bucket width is always <= 1/16 of the bucket's lower bound and the
// relative quantization error of any reported percentile is <= 6.25%.
// Octaves run through exponent 37 — values >= 2^38 ns (~4.6 minutes; far
// beyond any per-event latency this engine produces) clamp into the top
// bucket, while min/max still track the exact extremes. That fixes the
// footprint at 16 + 34*16 = 560 buckets (~4.4 KB), preallocated inline, so
// recording never allocates.
//
// Record() is wait-free modulo the min/max updates: two relaxed fetch_adds
// (bucket + sum) plus compare-exchange loops for min/max that only iterate
// when the value extends the observed range — rare after warm-up. Snapshots
// are relaxed reads; the reported count is derived from the bucket tallies
// themselves, so percentile ranks are always internally consistent even if
// the snapshot races concurrent recorders.

#ifndef SLICENSTITCH_TELEMETRY_HISTOGRAM_H_
#define SLICENSTITCH_TELEMETRY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace sns {
namespace telemetry {

class LatencyHistogram;

/// Value-type copy of a histogram's state at one instant. Mergeable and
/// queryable; cheap to copy around (a few KB, no heap).
struct HistogramSnapshot {
  static constexpr int kNumBuckets = 560;

  std::array<uint64_t, kNumBuckets> buckets{};
  /// Sum of `buckets` — derived at snapshot time, so ranks computed against
  /// it always land inside the bucket tallies.
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;

  /// Folds `other` into this snapshot. Associative and commutative, so
  /// per-shard snapshots can be merged in any order.
  void Merge(const HistogramSnapshot& other);

  /// Value at quantile q in [0, 1]: q <= 0 returns min, q >= 1 returns max,
  /// otherwise the midpoint of the bucket holding the ceil(q * count)-th
  /// smallest sample, clamped to [min, max]. Returns 0 when empty.
  int64_t Percentile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) /
                                  static_cast<double>(count);
  }
};

/// The live, concurrently-recordable histogram. Storage is inline — the
/// object is its own fixed ~4.4 KB footprint — and Record never allocates.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 16
  /// Highest tracked exponent: values in [2^37, 2^38) get their own
  /// sub-buckets; anything larger clamps into the last of them.
  static constexpr int kTopExponent = 37;
  static constexpr int64_t kMaxTrackable = (int64_t{1} << (kTopExponent + 1)) - 1;
  static constexpr int kNumBuckets =
      kSubBuckets + (kTopExponent - kSubBits + 1) * kSubBuckets;  // 560

  static_assert(kNumBuckets == HistogramSnapshot::kNumBuckets);

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Negative values (a clock anomaly) clamp to 0;
  /// values above kMaxTrackable clamp into the top bucket but still drive
  /// max. Lock-free, allocation-free.
  void Record(int64_t value) {
    if (value < 0) value = 0;
    const int64_t clamped = value > kMaxTrackable ? kMaxTrackable : value;
    buckets_[BucketIndex(clamped)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen && !min_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  /// Relaxed copy of the current state. Safe against concurrent Record; the
  /// tallies of samples recorded while snapshotting may be partially
  /// included.
  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value in [0, kMaxTrackable]. Exposed for boundary
  /// tests.
  static constexpr int BucketIndex(int64_t value) {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int exponent = std::bit_width(static_cast<uint64_t>(value)) - 1;
    const int group = exponent - kSubBits + 1;
    const int sub = static_cast<int>((value >> (exponent - kSubBits)) -
                                     kSubBuckets);
    return group * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `index`. Exposed for boundary tests.
  static constexpr int64_t BucketLowerBound(int index) {
    if (index < kSubBuckets) return index;
    const int group = index / kSubBuckets;
    const int sub = index % kSubBuckets;
    return static_cast<int64_t>(kSubBuckets + sub) << (group - 1);
  }

  /// Number of distinct values mapping to bucket `index`.
  static constexpr int64_t BucketWidth(int index) {
    if (index < kSubBuckets) return 1;
    return int64_t{1} << (index / kSubBuckets - 1);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{-1};
};

}  // namespace telemetry
}  // namespace sns

#endif  // SLICENSTITCH_TELEMETRY_HISTOGRAM_H_
