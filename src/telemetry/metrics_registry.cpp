#include "telemetry/metrics_registry.h"

namespace sns {
namespace telemetry {

MetricsRegistry::MetricsRegistry(int num_shards) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardMetrics>());
  }
}

StreamMetrics* MetricsRegistry::RegisterStream(std::string_view name,
                                               int shard) {
  if (shard < 0) shard = 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    it = streams_.emplace(std::string(name), std::make_unique<StreamMetrics>())
             .first;
  }
  it->second->shard = shard;
  return it->second.get();
}

ServiceMetricsSnapshot MetricsRegistry::Snapshot() const {
  ServiceMetricsSnapshot snap;
  snap.shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardMetrics& s = *shards_[i];
    ShardMetricsSnapshot out;
    out.shard = static_cast<int>(i);
    out.tasks_executed = s.tasks_executed.Get();
    out.mailbox_pushes = s.mailbox_pushes.Get();
    out.mailbox_blocked = s.mailbox_blocked.Get();
    out.mailbox_rejected = s.mailbox_rejected.Get();
    out.mailbox_deadline_exceeded = s.mailbox_deadline_exceeded.Get();
    out.queue_depth = s.queue_depth.Get();
    out.queue_depth_peak = s.queue_depth.Peak();
    out.apply_ns = s.apply_ns.Snapshot();
    out.ingest_latency_ns = s.ingest_latency_ns.Snapshot();
    snap.ingest_latency_ns.Merge(out.ingest_latency_ns);
    snap.apply_ns.Merge(out.apply_ns);
    snap.shards.push_back(std::move(out));
  }
  std::lock_guard<std::mutex> lock(mu_);
  snap.streams.reserve(streams_.size());
  for (const auto& [name, metrics] : streams_) {
    StreamMetricsSnapshot out;
    out.name = name;
    out.shard = metrics->shard;
    out.tuples_ingested = metrics->tuples_ingested.Get();
    out.batches_applied = metrics->batches_applied.Get();
    out.admission_rejects = metrics->admission_rejects.Get();
    out.quarantines = metrics->quarantines.Get();
    out.recoveries = metrics->recoveries.Get();
    out.journal_appends = metrics->journal_appends.Get();
    out.journal_bytes = metrics->journal_bytes.Get();
    out.journal_rotations = metrics->journal_rotations.Get();
    out.checkpoint_writes = metrics->checkpoint_writes.Get();
    out.checkpoint_bytes = metrics->checkpoint_bytes.Get();
    out.outlier_captures = metrics->outlier_captures.Get();
    out.outlier_evictions = metrics->outlier_evictions.Get();
    out.journal_append_ns = metrics->journal_append_ns.Snapshot();
    out.checkpoint_write_ns = metrics->checkpoint_write_ns.Snapshot();
    out.loss_update_ns = metrics->loss_update_ns.Snapshot();
    snap.streams.push_back(std::move(out));
  }
  return snap;
}

}  // namespace telemetry
}  // namespace sns
