// The "ALS" baseline: batch CP decomposition recomputed from scratch on the
// window at every period boundary. The accuracy ceiling (its fitness is the
// denominator of relative fitness) and by far the slowest method.

#ifndef SLICENSTITCH_BASELINES_PERIODIC_ALS_H_
#define SLICENSTITCH_BASELINES_PERIODIC_ALS_H_

#include "baselines/periodic_algorithm.h"
#include "core/options.h"

namespace sns {

class PeriodicAls : public PeriodicAlgorithm {
 public:
  PeriodicAls(int64_t rank, const AlsOptions& options, uint64_t seed)
      : rank_(rank), options_(options), rng_(seed) {}

  std::string_view name() const override { return "ALS"; }

  void Initialize(const SparseTensor& window, Rng& rng) override;
  void OnPeriod(const SparseTensor& window,
                const SparseTensor& newest_unit) override;
  const KruskalModel& model() const override { return model_; }

 private:
  int64_t rank_;
  AlsOptions options_;
  Rng rng_;
  KruskalModel model_;
};

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_PERIODIC_ALS_H_
