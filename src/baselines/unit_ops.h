// Kernels over (M−1)-mode tensor units shared by the periodic baselines:
// the right-hand side for solving a new time-mode row, and the per-unit
// MTTKRP contribution to a non-time mode's accumulator.

#ifndef SLICENSTITCH_BASELINES_UNIT_OPS_H_
#define SLICENSTITCH_BASELINES_UNIT_OPS_H_

#include <vector>

#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// rhs_r = Σ_{J∈unit} y_J Π_{m<M-1} A(m)(j_m, r): the MTTKRP row for solving
/// a single time-mode row against the unit (factors[0..M-2] are the non-time
/// factor matrices; later entries of `factors` are ignored).
std::vector<double> UnitTimeRowRhs(const SparseTensor& unit,
                                   const std::vector<Matrix>& factors);

/// p(j_m, r) += sign · Σ_{J∈unit, J[mode]=j_m} y_J · time_row[r] ·
/// Π_{n≠mode, n<M-1} A(n)(j_n, r): the unit's contribution to the mode-`mode`
/// MTTKRP accumulator given the time-row values the unit sits on.
void AccumulateUnitMttkrp(const SparseTensor& unit,
                          const std::vector<Matrix>& factors,
                          const double* time_row, int mode, double sign,
                          Matrix& p);

/// Splits an M-mode window tensor into its W per-slice (M−1)-mode units
/// (index 0 = oldest slice).
std::vector<SparseTensor> SplitWindowIntoUnits(const SparseTensor& window);

/// Adds `relative · (trace(h)/n + 1e-12)` to the diagonal of the square
/// matrix `h`. The incremental baselines ridge their accumulated normal
/// equations this way: decayed/frozen history Grams go near-singular on
/// sparse data and an unregularized pseudoinverse solve amplifies noise
/// catastrophically.
void AddRidge(Matrix& h, double relative);

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_UNIT_OPS_H_
