#include "baselines/online_scp.h"

#include "baselines/unit_ops.h"
#include "core/als.h"
#include "core/gram_solve.h"
#include "tensor/mttkrp.h"

namespace sns {
namespace {

/// Frozen Gram-side contribution of one unit for mode `mode`:
/// (c c') ∗ (∗_{n≠mode, n non-time} A(n)'A(n)), with everything evaluated at
/// the unit's entry time.
Matrix UnitGramContribution(const std::vector<Matrix>& grams,
                            const double* time_row, int mode,
                            int num_nontime_modes) {
  const int64_t rank = grams[0].rows();
  Matrix g(rank, rank);
  for (int64_t i = 0; i < rank; ++i) {
    for (int64_t j = 0; j < rank; ++j) g(i, j) = time_row[i] * time_row[j];
  }
  for (int n = 0; n < num_nontime_modes; ++n) {
    if (n == mode) continue;
    g = Hadamard(g, grams[static_cast<size_t>(n)]);
  }
  return g;
}

}  // namespace

void OnlineScp::Initialize(const SparseTensor& window, Rng& rng) {
  CpdState state(AlsDecompose(window, rank_, init_options_, rng));
  state.AbsorbLambda();
  model_ = state.model;
  grams_ = state.grams;

  // Per-unit frozen contributions under the initial factors; the
  // accumulators P(m), G(m) are their sums.
  const int time_mode = num_nontime_modes();
  mttkrp_acc_.clear();
  gram_acc_.clear();
  for (int m = 0; m < num_nontime_modes(); ++m) {
    mttkrp_acc_.emplace_back(model_.factor(m).rows(), rank_);
    gram_acc_.emplace_back(rank_, rank_);
  }
  unit_contributions_.clear();
  std::vector<SparseTensor> units = SplitWindowIntoUnits(window);
  for (size_t w = 0; w < units.size(); ++w) {
    AdmitUnit(units[w], model_.factor(time_mode).Row(static_cast<int64_t>(w)));
  }
}

void OnlineScp::AdmitUnit(const SparseTensor& unit, const double* time_row) {
  UnitContribution contribution;
  for (int m = 0; m < num_nontime_modes(); ++m) {
    Matrix p(model_.factor(m).rows(), rank_);
    AccumulateUnitMttkrp(unit, model_.factors(), time_row, m, /*sign=*/+1.0,
                         p);
    Matrix g =
        UnitGramContribution(grams_, time_row, m, num_nontime_modes());
    mttkrp_acc_[static_cast<size_t>(m)] =
        Add(mttkrp_acc_[static_cast<size_t>(m)], p);
    gram_acc_[static_cast<size_t>(m)] =
        Add(gram_acc_[static_cast<size_t>(m)], g);
    contribution.mttkrp.push_back(std::move(p));
    contribution.gram.push_back(std::move(g));
  }
  unit_contributions_.push_back(std::move(contribution));
}

void OnlineScp::RefreshGram(int mode) {
  grams_[static_cast<size_t>(mode)] =
      MultiplyTransposeA(model_.factor(mode), model_.factor(mode));
}

void OnlineScp::OnPeriod(const SparseTensor& /*window*/,
                         const SparseTensor& newest_unit) {
  const int time_mode = num_nontime_modes();
  const int64_t rank = rank_;
  Matrix& time_factor = model_.factor(time_mode);
  const int64_t w_size = time_factor.rows();

  // 1. Retire the expiring unit: subtract exactly what it contributed when
  //    it entered (frozen-history bookkeeping, both sides of the normal
  //    equations).
  SNS_CHECK(!unit_contributions_.empty());
  for (int m = 0; m < num_nontime_modes(); ++m) {
    mttkrp_acc_[static_cast<size_t>(m)] =
        Subtract(mttkrp_acc_[static_cast<size_t>(m)],
                 unit_contributions_.front().mttkrp[static_cast<size_t>(m)]);
    gram_acc_[static_cast<size_t>(m)] =
        Subtract(gram_acc_[static_cast<size_t>(m)],
                 unit_contributions_.front().gram[static_cast<size_t>(m)]);
  }
  unit_contributions_.pop_front();

  // 2. Slide the time factor and solve the newest row in closed form:
  //    c = rhs (∗_{m<M} A(m)'A(m))†.
  ShiftTimeFactorRows(time_factor);
  std::vector<double> rhs = UnitTimeRowRhs(newest_unit, model_.factors());
  Matrix h_time = HadamardOfGramsExcept(grams_, time_mode);
  std::vector<double> new_row(static_cast<size_t>(rank));
  SolveRowAgainstGram(h_time, rhs.data(), new_row.data());
  std::copy(new_row.begin(), new_row.end(), time_factor.Row(w_size - 1));
  RefreshGram(time_mode);

  // 3. Admit the new unit: compute, cache, and add its contributions.
  AdmitUnit(newest_unit, new_row.data());

  // 4. Refresh each non-time factor against the frozen normal equations:
  //    A(m) = P(m) G(m)†, mildly ridged against near-singular history.
  for (int m = 0; m < num_nontime_modes(); ++m) {
    Matrix h = gram_acc_[static_cast<size_t>(m)];
    AddRidge(h, 1e-4);
    model_.factor(m) = SolveRowsAgainstGram(
        h, mttkrp_acc_[static_cast<size_t>(m)]);
    RefreshGram(m);
  }
}

}  // namespace sns
