#include "baselines/cp_stream.h"

#include <cmath>

#include "baselines/unit_ops.h"
#include "core/als.h"
#include "core/gram_solve.h"
#include "tensor/mttkrp.h"

namespace sns {

void CpStream::Initialize(const SparseTensor& window, Rng& rng) {
  CpdState state(AlsDecompose(window, rank_, init_options_, rng));
  state.AbsorbLambda();
  model_ = state.model;
  grams_ = state.grams;

  const int time_mode = num_nontime_modes();
  const Matrix& time_factor = model_.factor(time_mode);
  const int64_t w_size = time_factor.rows();

  // Seed the decayed history from the initial window's units, oldest first,
  // so the accumulators reflect the same exponential profile they would have
  // had if streamed.
  time_history_gram_ = Matrix(rank_, rank_);
  mttkrp_acc_.clear();
  for (int m = 0; m < num_nontime_modes(); ++m) {
    mttkrp_acc_.emplace_back(model_.factor(m).rows(), rank_);
  }
  std::vector<SparseTensor> units = SplitWindowIntoUnits(window);
  for (int64_t w = 0; w < w_size; ++w) {
    const double* c_row = time_factor.Row(w);
    const double weight =
        std::pow(forgetting_, static_cast<double>(w_size - 1 - w));
    for (int64_t i = 0; i < rank_; ++i) {
      for (int64_t j = 0; j < rank_; ++j) {
        time_history_gram_(i, j) += weight * c_row[i] * c_row[j];
      }
    }
    for (int m = 0; m < num_nontime_modes(); ++m) {
      AccumulateUnitMttkrp(units[static_cast<size_t>(w)], model_.factors(),
                           c_row, m, weight,
                           mttkrp_acc_[static_cast<size_t>(m)]);
    }
  }
}

void CpStream::RefreshGram(int mode) {
  grams_[static_cast<size_t>(mode)] =
      MultiplyTransposeA(model_.factor(mode), model_.factor(mode));
}

void CpStream::OnPeriod(const SparseTensor& /*window*/,
                        const SparseTensor& newest_unit) {
  const int time_mode = num_nontime_modes();
  Matrix& time_factor = model_.factor(time_mode);
  const int64_t w_size = time_factor.rows();

  // 1. Solve the newest time row: c = rhs (∗_{m<M} A'A)†.
  std::vector<double> rhs = UnitTimeRowRhs(newest_unit, model_.factors());
  Matrix h_time = HadamardOfGramsExcept(grams_, time_mode);
  std::vector<double> c_row(static_cast<size_t>(rank_));
  SolveRowAgainstGram(h_time, rhs.data(), c_row.data());

  // 2. Decay and augment the history statistics.
  time_history_gram_ = Scale(time_history_gram_, forgetting_);
  for (int64_t i = 0; i < rank_; ++i) {
    for (int64_t j = 0; j < rank_; ++j) {
      time_history_gram_(i, j) +=
          c_row[static_cast<size_t>(i)] * c_row[static_cast<size_t>(j)];
    }
  }
  for (int m = 0; m < num_nontime_modes(); ++m) {
    mttkrp_acc_[static_cast<size_t>(m)] =
        Scale(mttkrp_acc_[static_cast<size_t>(m)], forgetting_);
    AccumulateUnitMttkrp(newest_unit, model_.factors(), c_row.data(), m,
                         /*sign=*/+1.0, mttkrp_acc_[static_cast<size_t>(m)]);
  }

  // 3. Refresh the non-time factors against the weighted history with the
  // proximal anchoring of the reference CP-stream implementation:
  // A = (P + rho*A_old)(H + rho*I)^+. The proximal term keeps factors near
  // their previous values when a period carries little data, which is what
  // prevents divergence on very sparse streams.
  for (int m = 0; m < num_nontime_modes(); ++m) {
    Matrix h = time_history_gram_;
    for (int n = 0; n < num_nontime_modes(); ++n) {
      if (n == m) continue;
      h = Hadamard(h, grams_[static_cast<size_t>(n)]);
    }
    double trace = 0.0;
    for (int64_t k = 0; k < rank_; ++k) trace += h(k, k);
    const double rho =
        0.1 * (trace / static_cast<double>(rank_) + 1e-12);
    for (int64_t k = 0; k < rank_; ++k) h(k, k) += rho;
    Matrix rhs = mttkrp_acc_[static_cast<size_t>(m)];
    const Matrix& old_factor = model_.factor(m);
    for (int64_t i = 0; i < rhs.rows(); ++i) {
      double* rhs_row = rhs.Row(i);
      const double* old_row = old_factor.Row(i);
      for (int64_t k = 0; k < rank_; ++k) rhs_row[k] += rho * old_row[k];
    }
    model_.factor(m) = SolveRowsAgainstGram(h, rhs);
    RefreshGram(m);
  }

  // 4. The window model keeps the W latest time rows.
  ShiftTimeFactorRows(time_factor);
  std::copy(c_row.begin(), c_row.end(), time_factor.Row(w_size - 1));
  RefreshGram(time_mode);
}

}  // namespace sns
