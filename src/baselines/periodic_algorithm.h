// Interface of the conventional-CPD baselines the paper compares against
// (§VI-A): ALS, OnlineSCP, CP-stream, and NeCPD(n). As in the paper, each is
// adapted to decompose the sliding tensor window and updates its factors
// once per period T — at period boundaries — rather than per event.

#ifndef SLICENSTITCH_BASELINES_PERIODIC_ALGORITHM_H_
#define SLICENSTITCH_BASELINES_PERIODIC_ALGORITHM_H_

#include <string_view>

#include "common/random.h"
#include "tensor/kruskal.h"
#include "tensor/sparse_tensor.h"

namespace sns {

/// A CP decomposition algorithm driven at period boundaries.
class PeriodicAlgorithm {
 public:
  virtual ~PeriodicAlgorithm() = default;

  /// Display name, e.g. "OnlineSCP".
  virtual std::string_view name() const = 0;

  /// Initializes the factors from the warm-up window (M-mode, time last).
  virtual void Initialize(const SparseTensor& window, Rng& rng) = 0;

  /// One period elapsed: `window` is the up-to-date M-mode window tensor and
  /// `newest_unit` the (M−1)-mode tensor unit that just closed.
  virtual void OnPeriod(const SparseTensor& window,
                        const SparseTensor& newest_unit) = 0;

  /// Current window model (time mode last, newest time row at W−1).
  virtual const KruskalModel& model() const = 0;
};

/// Shifts the time-mode factor up one row (row 0 drops out, row W−1 becomes
/// a copy of the previous newest row as the starting guess for the unit that
/// just opened). Shared by the incremental baselines.
void ShiftTimeFactorRows(Matrix& time_factor);

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_PERIODIC_ALGORITHM_H_
