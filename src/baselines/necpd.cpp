#include "baselines/necpd.h"

#include <algorithm>
#include <cmath>

#include "core/als.h"
#include "tensor/mttkrp.h"

namespace sns {

void NeCpd::Initialize(const SparseTensor& window, Rng& rng) {
  CpdState state(AlsDecompose(window, rank_, init_options_, rng));
  state.AbsorbLambda();
  model_ = state.model;
  velocity_.clear();
  for (int m = 0; m < model_.num_modes(); ++m) {
    velocity_.emplace_back(model_.factor(m).rows(), rank_);
  }
}

void NeCpd::SgdStep(const ModeIndex& cell, double value) {
  // Nesterov look-ahead rows: row + μ·velocity.
  const int modes = model_.num_modes();
  std::vector<std::vector<double>> lookahead(static_cast<size_t>(modes));
  for (int m = 0; m < modes; ++m) {
    const double* row = model_.factor(m).Row(cell[m]);
    const double* vel = velocity_[static_cast<size_t>(m)].Row(cell[m]);
    auto& ahead = lookahead[static_cast<size_t>(m)];
    ahead.resize(static_cast<size_t>(rank_));
    for (int64_t r = 0; r < rank_; ++r) {
      ahead[static_cast<size_t>(r)] = row[r] + momentum_ * vel[r];
    }
  }

  // Residual at the look-ahead point.
  double approx = 0.0;
  for (int64_t r = 0; r < rank_; ++r) {
    double prod = 1.0;
    for (int m = 0; m < modes; ++m) {
      prod *= lookahead[static_cast<size_t>(m)][static_cast<size_t>(r)];
    }
    approx += prod;
  }
  const double residual = value - approx;

  // Per-mode gradient step with an LMS-normalized learning rate. The +1
  // regularizer bounds the step even when the other modes' rows are nearly
  // zero (a bare epsilon floor lets steps explode on sparse factors).
  for (int m = 0; m < modes; ++m) {
    double norm_sq = 1.0;
    std::vector<double> had(static_cast<size_t>(rank_), 1.0);
    for (int n = 0; n < modes; ++n) {
      if (n == m) continue;
      for (int64_t r = 0; r < rank_; ++r) {
        had[static_cast<size_t>(r)] *=
            lookahead[static_cast<size_t>(n)][static_cast<size_t>(r)];
      }
    }
    for (int64_t r = 0; r < rank_; ++r) {
      norm_sq += had[static_cast<size_t>(r)] * had[static_cast<size_t>(r)];
    }
    const double step = learning_rate_ * residual / norm_sq;
    double* vel = velocity_[static_cast<size_t>(m)].Row(cell[m]);
    double* row = model_.factor(m).Row(cell[m]);
    double vel_norm_sq = 0.0;
    for (int64_t r = 0; r < rank_; ++r) {
      vel[r] = momentum_ * vel[r] + step * had[static_cast<size_t>(r)];
      vel_norm_sq += vel[r] * vel[r];
    }
    // Gradient clipping: cap the per-row velocity norm at 1.
    const double scale =
        vel_norm_sq > 1.0 ? 1.0 / std::sqrt(vel_norm_sq) : 1.0;
    // L2 weight decay on the touched row (sampled-objective regularizer).
    const double shrink = 1.0 - learning_rate_ * weight_decay_;
    for (int64_t r = 0; r < rank_; ++r) {
      vel[r] *= scale;
      row[r] = shrink * row[r] + vel[r];
    }
  }
}

void NeCpd::OnPeriod(const SparseTensor& window,
                     const SparseTensor& /*newest_unit*/) {
  const int time_mode = model_.num_modes() - 1;
  ShiftTimeFactorRows(model_.factor(time_mode));
  // Fresh momentum each period: velocities carried across boundaries keep
  // pushing rows that this period's data may never touch and destabilize
  // the sparse modes.
  for (Matrix& velocity : velocity_) velocity.SetZero();

  // Collect the window's non-zeros once; epochs shuffle their visit order.
  // An equal number of uniformly drawn cells (almost all zero) is added as
  // negative samples — SGD on the non-zeros alone lets predictions at zero
  // cells inflate unchecked on sparse tensors.
  std::vector<std::pair<ModeIndex, double>> samples;
  samples.reserve(static_cast<size_t>(2 * window.nnz()));
  window.ForEachNonzero([&](const ModeIndex& index, double value) {
    samples.emplace_back(index, value);
  });
  const int64_t negatives = window.nnz();
  for (int64_t n = 0; n < negatives; ++n) {
    ModeIndex cell;
    for (int m = 0; m < window.num_modes(); ++m) {
      cell.PushBack(
          static_cast<int32_t>(rng_.UniformInt(0, window.dim(m) - 1)));
    }
    samples.emplace_back(cell, window.Get(cell));
  }

  for (int epoch = 0; epoch < epochs_; ++epoch) {
    // Fisher–Yates shuffle driven by the library Rng.
    for (size_t i = samples.size(); i > 1; --i) {
      std::swap(samples[i - 1],
                samples[static_cast<size_t>(rng_.NextUint64(i))]);
    }
    for (const auto& [index, value] : samples) SgdStep(index, value);
  }
}

}  // namespace sns
