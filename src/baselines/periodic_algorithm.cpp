#include "baselines/periodic_algorithm.h"

namespace sns {

void ShiftTimeFactorRows(Matrix& time_factor) {
  const int64_t w = time_factor.rows();
  const int64_t r = time_factor.cols();
  for (int64_t i = 0; i + 1 < w; ++i) {
    const double* next = time_factor.Row(i + 1);
    double* current = time_factor.Row(i);
    for (int64_t k = 0; k < r; ++k) current[k] = next[k];
  }
  // Row W−1 keeps the previous newest row as a warm start.
}

}  // namespace sns
