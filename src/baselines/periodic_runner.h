// Drives a PeriodicAlgorithm over a multi-aspect data stream: feeds tuples
// into the conventional sliding window, invokes the algorithm at every
// period boundary, and records per-boundary fitness and update latency —
// the "dots" of Fig. 4 and the baseline rows of Figs. 1 and 5.

#ifndef SLICENSTITCH_BASELINES_PERIODIC_RUNNER_H_
#define SLICENSTITCH_BASELINES_PERIODIC_RUNNER_H_

#include <memory>
#include <vector>

#include "baselines/periodic_algorithm.h"
#include "common/random.h"
#include "stream/periodic_window.h"

namespace sns {

/// One factor-matrix refresh at a period boundary.
struct PeriodicObservation {
  int64_t boundary_time = 0;
  double fitness = 0.0;        // Against the window right after the update.
  double update_micros = 0.0;  // Time spent inside OnPeriod.
};

class PeriodicRunner {
 public:
  PeriodicRunner(std::vector<int64_t> mode_dims, int window_size,
                 int64_t period, std::unique_ptr<PeriodicAlgorithm> algorithm);

  /// Feeds a warm-up tuple (before Initialize; no algorithm updates).
  void Warmup(const Tuple& tuple);

  /// Closes every period up to `boundary_time` (a multiple of the period)
  /// and initializes the algorithm from the resulting window. Subsequent
  /// Process() calls trigger per-period updates after that boundary.
  void Initialize(Rng& rng, int64_t boundary_time);

  /// Feeds a live tuple, running the algorithm at any boundary it crosses.
  void Process(const Tuple& tuple);

  /// Runs the algorithm for every boundary up to and including `time`.
  void FinishUpTo(int64_t time);

  const std::vector<PeriodicObservation>& observations() const {
    return observations_;
  }
  const KruskalModel& model() const { return algorithm_->model(); }
  std::string_view algorithm_name() const { return algorithm_->name(); }

  /// Current window tensor (conventional model) for external evaluation.
  SparseTensor WindowTensor() const { return window_.WindowTensor(); }

  /// Mean per-boundary update latency in microseconds.
  double MeanUpdateMicros() const;

 private:
  void RunBoundary(int64_t boundary);

  PeriodicTensorWindow window_;
  std::unique_ptr<PeriodicAlgorithm> algorithm_;
  int64_t next_boundary_ = 0;
  bool initialized_ = false;
  std::vector<PeriodicObservation> observations_;
};

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_PERIODIC_RUNNER_H_
