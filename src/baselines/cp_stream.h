// CP-stream baseline (Smith, Huang, Sidiropoulos & Karypis, "Streaming
// Tensor Factorization for Infinite Data Sources", SDM 2018), adapted to the
// sliding-window setting of the paper's experiments.
//
// Per period: the newest unit's time row c_t is solved in closed form, the
// exponentially-weighted history Grams G = Σ_s γ^{t−s} c_s c_s' and per-mode
// MTTKRP accumulators P(m) = Σ_s γ^{t−s} MTTKRP(Y_s, c_s) are decayed and
// augmented, and each non-time factor is refreshed as
// A(m) = P(m) [G ∗ (∗_{n≠m} A(n)'A(n))]†. The window model exposes the W
// most recent time rows for fitness evaluation.

#ifndef SLICENSTITCH_BASELINES_CP_STREAM_H_
#define SLICENSTITCH_BASELINES_CP_STREAM_H_

#include <deque>

#include "baselines/periodic_algorithm.h"
#include "core/options.h"

namespace sns {

class CpStream : public PeriodicAlgorithm {
 public:
  /// forgetting ∈ (0, 1]: weight decay per period (γ). The default 0.9
  /// gives an effective memory of ≈ W = 10 periods, matching the windowed
  /// comparison.
  CpStream(int64_t rank, const AlsOptions& init_options,
           double forgetting = 0.9)
      : rank_(rank), init_options_(init_options), forgetting_(forgetting) {
    SNS_CHECK(forgetting_ > 0.0 && forgetting_ <= 1.0);
  }

  std::string_view name() const override { return "CP-stream"; }

  void Initialize(const SparseTensor& window, Rng& rng) override;
  void OnPeriod(const SparseTensor& window,
                const SparseTensor& newest_unit) override;
  const KruskalModel& model() const override { return model_; }

 private:
  int num_nontime_modes() const { return model_.num_modes() - 1; }
  void RefreshGram(int mode);

  int64_t rank_;
  AlsOptions init_options_;
  double forgetting_;
  KruskalModel model_;
  std::vector<Matrix> grams_;
  Matrix time_history_gram_;        // G = Σ γ^{t−s} c_s c_s'.
  std::vector<Matrix> mttkrp_acc_;  // P(m), decayed.
};

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_CP_STREAM_H_
