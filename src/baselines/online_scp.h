// OnlineSCP baseline (Zhou, Erfani & Bailey, "Online CP Decomposition for
// Sparse Tensors", ICDM 2018), adapted — as in the paper's experiments — to
// the sliding tensor window.
//
// The method's core idea is kept intact: per-mode MTTKRP accumulators P(m)
// are maintained incrementally (cost proportional to the non-zeros of the
// entering and leaving units, not the window), under the assumption that
// contributions computed when a unit entered remain valid while the factors
// drift — they are frozen. Each period: the expiring unit's *cached* entry
// contribution is subtracted (exact cancellation, so staleness is bounded by
// the W periods a unit spends in the window), the time factor shifts, the
// new unit's time row is solved in closed form, its contribution is added
// and cached, and every non-time factor is refreshed as A(m) = P(m) H(m)†.

#ifndef SLICENSTITCH_BASELINES_ONLINE_SCP_H_
#define SLICENSTITCH_BASELINES_ONLINE_SCP_H_

#include <deque>

#include "baselines/periodic_algorithm.h"
#include "core/options.h"

namespace sns {

class OnlineScp : public PeriodicAlgorithm {
 public:
  OnlineScp(int64_t rank, const AlsOptions& init_options)
      : rank_(rank), init_options_(init_options) {}

  std::string_view name() const override { return "OnlineSCP"; }

  void Initialize(const SparseTensor& window, Rng& rng) override;
  void OnPeriod(const SparseTensor& window,
                const SparseTensor& newest_unit) override;
  const KruskalModel& model() const override { return model_; }

 private:
  /// Frozen contributions of one unit to both sides of the per-mode normal
  /// equations, captured when the unit entered the window.
  struct UnitContribution {
    std::vector<Matrix> mttkrp;  // P-side, N_m × R per non-time mode.
    std::vector<Matrix> gram;    // G-side, R × R per non-time mode.
  };

  int num_nontime_modes() const { return model_.num_modes() - 1; }
  void RefreshGram(int mode);
  /// Computes + caches the unit's contributions and adds them to P/G.
  void AdmitUnit(const SparseTensor& unit, const double* time_row);

  int64_t rank_;
  AlsOptions init_options_;
  KruskalModel model_;
  std::vector<Matrix> grams_;
  std::vector<Matrix> mttkrp_acc_;  // P(m) per non-time mode.
  std::vector<Matrix> gram_acc_;    // G(m) per non-time mode.
  std::deque<UnitContribution> unit_contributions_;  // Oldest first, ≤ W.
};

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_ONLINE_SCP_H_
