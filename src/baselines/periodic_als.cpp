#include "baselines/periodic_als.h"

#include "core/als.h"

namespace sns {

void PeriodicAls::Initialize(const SparseTensor& window, Rng& rng) {
  model_ = AlsDecompose(window, rank_, options_, rng);
}

void PeriodicAls::OnPeriod(const SparseTensor& window,
                           const SparseTensor& /*newest_unit*/) {
  model_ = AlsDecompose(window, rank_, options_, rng_);
}

}  // namespace sns
