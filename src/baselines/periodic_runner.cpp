#include "baselines/periodic_runner.h"

#include "common/stopwatch.h"

namespace sns {

PeriodicRunner::PeriodicRunner(std::vector<int64_t> mode_dims, int window_size,
                               int64_t period,
                               std::unique_ptr<PeriodicAlgorithm> algorithm)
    : window_(std::move(mode_dims), window_size, period),
      algorithm_(std::move(algorithm)) {
  SNS_CHECK(algorithm_ != nullptr);
}

void PeriodicRunner::Warmup(const Tuple& tuple) {
  SNS_CHECK(!initialized_);
  window_.AddTuple(tuple);
}

void PeriodicRunner::Initialize(Rng& rng, int64_t boundary_time) {
  SNS_CHECK(!initialized_);
  window_.CloseUpTo(boundary_time);
  algorithm_->Initialize(window_.WindowTensor(), rng);
  next_boundary_ = boundary_time + window_.period();
  initialized_ = true;
}

void PeriodicRunner::RunBoundary(int64_t boundary) {
  window_.CloseUpTo(boundary);
  SparseTensor window_tensor = window_.WindowTensor();
  SparseTensor newest_unit = window_.NewestUnit();
  Stopwatch timer;
  algorithm_->OnPeriod(window_tensor, newest_unit);
  const double micros = timer.ElapsedMicros();
  observations_.push_back(
      {boundary, algorithm_->model().Fitness(window_tensor), micros});
}

void PeriodicRunner::Process(const Tuple& tuple) {
  SNS_CHECK(initialized_);
  while (tuple.time > next_boundary_) {
    RunBoundary(next_boundary_);
    next_boundary_ += window_.period();
  }
  window_.AddTuple(tuple);
}

void PeriodicRunner::FinishUpTo(int64_t time) {
  SNS_CHECK(initialized_);
  while (next_boundary_ <= time) {
    RunBoundary(next_boundary_);
    next_boundary_ += window_.period();
  }
}

double PeriodicRunner::MeanUpdateMicros() const {
  if (observations_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& obs : observations_) total += obs.update_micros;
  return total / static_cast<double>(observations_.size());
}

}  // namespace sns
