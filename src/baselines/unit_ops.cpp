#include "baselines/unit_ops.h"

namespace sns {

std::vector<double> UnitTimeRowRhs(const SparseTensor& unit,
                                   const std::vector<Matrix>& factors) {
  const int modes = unit.num_modes();  // M−1 non-time modes.
  const int64_t rank = factors[0].cols();
  std::vector<double> rhs(static_cast<size_t>(rank), 0.0);
  std::vector<double> had(static_cast<size_t>(rank));
  unit.ForEachNonzero([&](const ModeIndex& index, double value) {
    std::fill(had.begin(), had.end(), 1.0);
    for (int m = 0; m < modes; ++m) {
      const double* row = factors[static_cast<size_t>(m)].Row(index[m]);
      for (int64_t r = 0; r < rank; ++r) had[static_cast<size_t>(r)] *= row[r];
    }
    for (int64_t r = 0; r < rank; ++r) {
      rhs[static_cast<size_t>(r)] += value * had[static_cast<size_t>(r)];
    }
  });
  return rhs;
}

void AccumulateUnitMttkrp(const SparseTensor& unit,
                          const std::vector<Matrix>& factors,
                          const double* time_row, int mode, double sign,
                          Matrix& p) {
  const int modes = unit.num_modes();
  const int64_t rank = p.cols();
  std::vector<double> had(static_cast<size_t>(rank));
  unit.ForEachNonzero([&](const ModeIndex& index, double value) {
    for (int64_t r = 0; r < rank; ++r) {
      had[static_cast<size_t>(r)] = time_row[r];
    }
    for (int m = 0; m < modes; ++m) {
      if (m == mode) continue;
      const double* row = factors[static_cast<size_t>(m)].Row(index[m]);
      for (int64_t r = 0; r < rank; ++r) had[static_cast<size_t>(r)] *= row[r];
    }
    double* p_row = p.Row(index[mode]);
    for (int64_t r = 0; r < rank; ++r) {
      p_row[r] += sign * value * had[static_cast<size_t>(r)];
    }
  });
}

void AddRidge(Matrix& h, double relative) {
  SNS_CHECK(h.rows() == h.cols());
  double trace = 0.0;
  for (int64_t i = 0; i < h.rows(); ++i) trace += h(i, i);
  const double ridge =
      relative * (trace / static_cast<double>(h.rows()) + 1e-12);
  for (int64_t i = 0; i < h.rows(); ++i) h(i, i) += ridge;
}

std::vector<SparseTensor> SplitWindowIntoUnits(const SparseTensor& window) {
  const int time_mode = window.num_modes() - 1;
  const int64_t w_size = window.dim(time_mode);
  std::vector<int64_t> unit_dims(window.dims().begin(),
                                 window.dims().end() - 1);
  std::vector<SparseTensor> units;
  units.reserve(static_cast<size_t>(w_size));
  const int64_t nnz_hint = window.nnz() / w_size + 1;
  for (int64_t w = 0; w < w_size; ++w) {
    units.emplace_back(unit_dims, nnz_hint);
  }
  window.ForEachNonzero([&](const ModeIndex& index, double value) {
    ModeIndex unit_index;
    for (int m = 0; m < time_mode; ++m) unit_index.PushBack(index[m]);
    units[static_cast<size_t>(index[time_mode])].Add(unit_index, value);
  });
  return units;
}

}  // namespace sns
