#include "baselines/unit_ops.h"

#include <algorithm>

#include "linalg/rank_dispatch.h"
#include "linalg/simd.h"

namespace sns {

std::vector<double> UnitTimeRowRhs(const SparseTensor& unit,
                                   const std::vector<Matrix>& factors) {
  const int modes = unit.num_modes();  // M−1 non-time modes.
  const int64_t rank = factors[0].cols();
  const int64_t padded = factors[0].stride();
  std::vector<double> rhs(static_cast<size_t>(padded), 0.0);
  AlignedVector had(rank);
  DispatchPaddedRank(padded, [&](auto tag) {
    constexpr int64_t P = decltype(tag)::value;
    unit.ForEachNonzero([&](const ModeIndex& index, double value) {
      std::fill(had.begin(), had.end(), 1.0);  // Padding lanes stay 0.
      for (int m = 0; m < modes; ++m) {
        VecMulAccum<P>(had.data(),
                       factors[static_cast<size_t>(m)].Row(index[m]), padded);
      }
      VecAxpy<P>(value, had.data(), rhs.data(), padded);
    });
  });
  rhs.resize(static_cast<size_t>(rank));
  return rhs;
}

void AccumulateUnitMttkrp(const SparseTensor& unit,
                          const std::vector<Matrix>& factors,
                          const double* time_row, int mode, double sign,
                          Matrix& p) {
  const int modes = unit.num_modes();
  const int64_t rank = p.cols();
  const int64_t padded = p.stride();
  // One allocation for both scratch rows: the staged padded copy of
  // time_row (which only carries `rank` values in caller buffers) and the
  // per-entry Hadamard accumulator.
  AlignedVector scratch(2 * padded);
  double* time_padded = scratch.data();
  double* had = scratch.data() + padded;
  std::copy(time_row, time_row + rank, time_padded);
  DispatchPaddedRank(padded, [&](auto tag) {
    constexpr int64_t P = decltype(tag)::value;
    unit.ForEachNonzero([&](const ModeIndex& index, double value) {
      VecCopy<P>(time_padded, had, padded);
      for (int m = 0; m < modes; ++m) {
        if (m == mode) continue;
        VecMulAccum<P>(had, factors[static_cast<size_t>(m)].Row(index[m]),
                       padded);
      }
      VecAxpy<P>(sign * value, had, p.Row(index[mode]), padded);
    });
  });
}

void AddRidge(Matrix& h, double relative) {
  SNS_CHECK(h.rows() == h.cols());
  double trace = 0.0;
  for (int64_t i = 0; i < h.rows(); ++i) trace += h(i, i);
  const double ridge =
      relative * (trace / static_cast<double>(h.rows()) + 1e-12);
  for (int64_t i = 0; i < h.rows(); ++i) h(i, i) += ridge;
}

std::vector<SparseTensor> SplitWindowIntoUnits(const SparseTensor& window) {
  const int time_mode = window.num_modes() - 1;
  const int64_t w_size = window.dim(time_mode);
  std::vector<int64_t> unit_dims(window.dims().begin(),
                                 window.dims().end() - 1);
  std::vector<SparseTensor> units;
  units.reserve(static_cast<size_t>(w_size));
  const int64_t nnz_hint = window.nnz() / w_size + 1;
  for (int64_t w = 0; w < w_size; ++w) {
    units.emplace_back(unit_dims, nnz_hint);
  }
  window.ForEachNonzero([&](const ModeIndex& index, double value) {
    ModeIndex unit_index;
    for (int m = 0; m < time_mode; ++m) unit_index.PushBack(index[m]);
    units[static_cast<size_t>(index[time_mode])].Add(unit_index, value);
  });
  return units;
}

}  // namespace sns
