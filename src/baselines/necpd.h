// NeCPD(n) baseline (Anaissi, Suleiman & Zandavi, "NeCPD: An Online Tensor
// Decomposition with Optimal Stochastic Gradient Descent", arXiv 2020):
// stochastic gradient descent with Nesterov's accelerated gradient.
// Adapted — like every baseline in the paper — to decompose the sliding
// tensor window: at each period boundary the time factor slides and n SGD
// epochs run over the window's non-zeros (plus an equal number of sampled
// zero cells) in random order. Gradients use a normalized step size (LMS
// style), per-row gradient clipping, and L2 weight decay on touched rows —
// the standard stabilizers of SGD matrix/tensor factorization on very
// sparse data.

#ifndef SLICENSTITCH_BASELINES_NECPD_H_
#define SLICENSTITCH_BASELINES_NECPD_H_

#include "baselines/periodic_algorithm.h"
#include "core/options.h"

namespace sns {

class NeCpd : public PeriodicAlgorithm {
 public:
  /// `epochs` is the paper's n (they report NeCPD(1) and NeCPD(10)).
  /// The defaults keep the effective normalized step learning_rate/(1−μ)
  /// at 0.2, inside the LMS stability region; per-row velocity norms are
  /// additionally capped at 1 (gradient clipping) since the multilinear
  /// objective's curvature grows with the factor magnitudes.
  NeCpd(int64_t rank, const AlsOptions& init_options, int epochs,
        double learning_rate = 0.05, double momentum = 0.3,
        double weight_decay = 0.1, uint64_t seed = 0x2ecb)
      : rank_(rank),
        init_options_(init_options),
        epochs_(epochs),
        learning_rate_(learning_rate),
        momentum_(momentum),
        weight_decay_(weight_decay),
        rng_(seed),
        name_("NeCPD(" + std::to_string(epochs) + ")") {
    SNS_CHECK(epochs_ >= 1);
  }

  std::string_view name() const override { return name_; }

  void Initialize(const SparseTensor& window, Rng& rng) override;
  void OnPeriod(const SparseTensor& window,
                const SparseTensor& newest_unit) override;
  const KruskalModel& model() const override { return model_; }

 private:
  /// One Nesterov SGD step on the squared error of a single window cell.
  void SgdStep(const ModeIndex& cell, double value);

  int64_t rank_;
  AlsOptions init_options_;
  int epochs_;
  double learning_rate_;
  double momentum_;
  double weight_decay_;
  Rng rng_;
  std::string name_;
  KruskalModel model_;
  std::vector<Matrix> velocity_;  // Nesterov momentum per factor matrix.
};

}  // namespace sns

#endif  // SLICENSTITCH_BASELINES_NECPD_H_
