// Observability scenario: the telemetry subsystem end to end. Demonstrates:
//   - ServiceOptions::metrics — compiled-in, off-by-default instrumentation
//     (enabled here, with a periodic exporter),
//   - the typed snapshot query: SnsService::Metrics() merges every shard's
//     lock-free counters and latency histograms after a sequence barrier,
//   - periodic per-stream samples pushed through the EventSink fan-out
//     (OnMetrics), the same subscriber objects that receive window events,
//   - the JSON-lines file exporter consumed by dashboards and by
//     tools/metrics_smoke.sh.
//
// Build & run:  ./build/example_metrics_observability [metrics.jsonl]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "slicenstitch.h"

namespace {

// Counts the periodic OnMetrics ticks; ignores window events.
class MetricsTickSink : public sns::EventSink {
 public:
  void OnStreamEvent(const sns::StreamEvent& event) override { (void)event; }
  void OnMetrics(const sns::telemetry::StreamMetricsSnapshot& metrics)
      override {
    ticks_.fetch_add(1, std::memory_order_relaxed);
    tuples_seen_.store(metrics.tuples_ingested, std::memory_order_relaxed);
  }
  int ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t tuples_seen() const {
    return tuples_seen_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> ticks_{0};
  std::atomic<uint64_t> tuples_seen_{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "metrics.jsonl";

  sns::ServiceOptions runtime;
  runtime.shards = 2;
  runtime.metrics.enabled = true;
  runtime.metrics.export_interval_ms = 50;
  runtime.metrics.json_path = json_path;
  sns::SnsService service(runtime);

  const std::vector<std::string> names = {"alpha", "beta"};
  sns::ContinuousCpdOptions engine;
  engine.rank = 4;
  engine.window_size = 10;
  engine.period = 3600;
  engine.variant = sns::SnsVariant::kRndPlus;

  std::vector<sns::DataStream> feeds;
  for (size_t i = 0; i < names.size(); ++i) {
    sns::SyntheticStreamConfig config;
    config.mode_dims = {16, 16};
    config.num_events = 12000;
    config.time_span = 20 * 3600;
    config.seed = 7 + i;
    auto stream = sns::GenerateSyntheticStream(config);
    if (!stream.ok()) return 1;
    feeds.push_back(std::move(stream).value());
    auto created = service.CreateStream(names[i], config.mode_dims, engine);
    if (!created.ok()) {
      std::printf("%s\n", created.status().ToString().c_str());
      return 1;
    }
  }

  MetricsTickSink sink;
  if (!service.Find(names[0])->AddSink(&sink).ok()) return 1;

  const int64_t warmup_end =
      static_cast<int64_t>(engine.window_size) * engine.period;
  std::vector<size_t> offsets(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    const std::span<const sns::Tuple> tuples(feeds[i].tuples());
    offsets[i] =
        static_cast<size_t>(feeds[i].CountTuplesThrough(warmup_end));
    if (!service.Warmup(names[i], tuples.subspan(0, offsets[i])).ok() ||
        !service.Initialize(names[i]).ok()) {
      return 1;
    }
  }

  // Live phase: hourly batches, paced so the 50 ms exporter fires several
  // times while ingest is in flight.
  std::vector<sns::Ticket> tickets;
  for (int64_t hour = 0; hour < 8; ++hour) {
    const int64_t horizon = warmup_end + (hour + 1) * engine.period;
    for (size_t i = 0; i < names.size(); ++i) {
      const std::span<const sns::Tuple> tuples(feeds[i].tuples());
      size_t end = offsets[i];
      while (end < tuples.size() && tuples[end].time < horizon) ++end;
      tickets.push_back(service.IngestAsync(
          names[i], tuples.subspan(offsets[i], end - offsets[i])));
      offsets[i] = end;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  service.Drain();
  for (const sns::Ticket& ticket : tickets) {
    if (!ticket.Wait().ok()) return 1;
  }
  // Give the exporter one more interval so at least one tick lands after
  // all batches applied.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

  auto metrics = service.Metrics();
  if (!metrics.ok()) {
    std::printf("%s\n", metrics.status().ToString().c_str());
    return 1;
  }
  const sns::telemetry::ServiceMetricsSnapshot& snap = metrics.value();
  std::printf("ingest latency: count=%llu p50=%lldns p99=%lldns max=%lldns\n",
              static_cast<unsigned long long>(snap.ingest_latency_ns.count),
              static_cast<long long>(snap.ingest_latency_ns.Percentile(0.50)),
              static_cast<long long>(snap.ingest_latency_ns.Percentile(0.99)),
              static_cast<long long>(snap.ingest_latency_ns.max));
  for (const auto& shard : snap.shards) {
    std::printf(
        "shard %d: tasks=%llu pushes=%llu depth_peak=%lld apply_p99=%lldns\n",
        shard.shard, static_cast<unsigned long long>(shard.tasks_executed),
        static_cast<unsigned long long>(shard.mailbox_pushes),
        static_cast<long long>(shard.queue_depth_peak),
        static_cast<long long>(shard.apply_ns.Percentile(0.99)));
  }
  for (const auto& stream : snap.streams) {
    std::printf("stream %-6s shard=%d tuples=%llu batches=%llu\n",
                stream.name.c_str(), stream.shard,
                static_cast<unsigned long long>(stream.tuples_ingested),
                static_cast<unsigned long long>(stream.batches_applied));
  }
  std::printf("periodic OnMetrics ticks on '%s': %d (tuples seen %llu)\n",
              names[0].c_str(), sink.ticks(),
              static_cast<unsigned long long>(sink.tuples_seen()));

  service.Shutdown();

  // Smoke contract: the snapshot must show real traffic and the exporter
  // must have fired at least once.
  if (snap.ingest_latency_ns.count == 0 || sink.ticks() == 0) {
    std::printf("telemetry smoke FAILED\n");
    return 1;
  }
  std::printf("metrics exported to %s\n", json_path.c_str());
  return 0;
}
