// Sharded service runtime scenario: one deployment hosting many city
// streams at once (the ROADMAP's one-stream-per-tenant model), executed by
// the asynchronous runtime instead of the caller's thread. Demonstrates:
//   - ServiceOptions: worker shards + backpressure policy + queue depth,
//   - IngestAsync returning completion Tickets (checked, not awaited,
//     per batch — awaited only at the end),
//   - sequence-consistent queries: Stats/RunningFitness hop to the owning
//     shard and observe every batch whose ticket was issued before them,
//   - the Drain/Shutdown lifecycle.
//
// Build & run:  ./build/example_sharded_service

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "slicenstitch.h"

int main() {
  // Four city-sized streams served by two worker shards: each stream is
  // pinned to one shard, so factor state is bitwise identical to running
  // the same feeds synchronously — just on two cores instead of one.
  sns::ServiceOptions runtime;
  runtime.shards = 2;
  runtime.backpressure = sns::BackpressurePolicy::kBlock;
  runtime.max_queue_depth = 256;
  sns::SnsService service(runtime);

  const std::vector<std::string> cities = {"nyc", "chicago", "seoul",
                                           "berlin"};
  sns::ContinuousCpdOptions engine;
  engine.rank = 8;
  engine.window_size = 10;
  engine.period = 3600;  // T = 1 hour.
  engine.variant = sns::SnsVariant::kRndPlus;

  // One synthetic (source, destination) feed per city.
  std::vector<sns::DataStream> feeds;
  for (size_t c = 0; c < cities.size(); ++c) {
    sns::SyntheticStreamConfig config;
    config.mode_dims = {64, 64};
    config.num_events = 40000;
    config.time_span = 20 * 3600;
    config.diurnal_period = 24 * 3600;
    config.seed = 100 + c;
    auto stream = sns::GenerateSyntheticStream(config);
    if (!stream.ok()) return 1;
    feeds.push_back(std::move(stream).value());

    auto created = service.CreateStream(cities[c], config.mode_dims, engine);
    if (!created.ok()) {
      std::printf("%s\n", created.status().ToString().c_str());
      return 1;
    }
  }

  // Warm-up and initialization are synchronous setup steps — they route
  // through the owning shard too, but the caller waits.
  const int64_t warmup_end =
      static_cast<int64_t>(engine.window_size) * engine.period;
  std::vector<size_t> offsets(cities.size());
  for (size_t c = 0; c < cities.size(); ++c) {
    const std::span<const sns::Tuple> tuples(feeds[c].tuples());
    offsets[c] =
        static_cast<size_t>(feeds[c].CountTuplesThrough(warmup_end));
    if (!service.Warmup(cities[c], tuples.subspan(0, offsets[c])).ok() ||
        !service.Initialize(cities[c]).ok()) {
      return 1;
    }
  }
  std::printf("serving %zu streams on %d shards\n", cities.size(),
              service.shards());

  // Live phase: hourly batches per city, submitted asynchronously. The
  // tickets of the newest hour are kept so completion (and per-batch
  // Status) can be checked without ever blocking the feed loop.
  std::vector<sns::Ticket> last_hour;
  for (int64_t hour = 0; hour < 10; ++hour) {
    const int64_t horizon = warmup_end + (hour + 1) * engine.period;
    last_hour.clear();
    for (size_t c = 0; c < cities.size(); ++c) {
      const std::span<const sns::Tuple> tuples(feeds[c].tuples());
      size_t end = offsets[c];
      while (end < tuples.size() && tuples[end].time < horizon) ++end;
      last_hour.push_back(service.IngestAsync(
          cities[c], tuples.subspan(offsets[c], end - offsets[c])));
      offsets[c] = end;
    }
    // Queries are sequence-consistent: issued after the tickets above,
    // they observe those batches — no Wait needed first.
    if (hour % 3 == 2) {
      for (const std::string& city : cities) {
        auto stats = service.Stats(city);
        auto fitness = service.RunningFitness(city);
        if (!stats.ok() || !fitness.ok()) return 1;
        std::printf("hour %2lld | %-8s | %7lld events | fitness~%.3f\n",
                    static_cast<long long>(hour),
                    city.c_str(),
                    static_cast<long long>(stats.value().events_processed),
                    fitness.value());
      }
    }
  }

  // Flush everything still queued, then check the final hour's tickets.
  service.Drain();
  for (const sns::Ticket& ticket : last_hour) {
    if (!ticket.Wait().ok()) {
      std::printf("ingest failed: %s\n", ticket.Wait().ToString().c_str());
      return 1;
    }
  }
  for (const std::string& city : cities) {
    std::printf("%-8s | applied sequence %llu | exact fitness %.3f\n",
                city.c_str(),
                static_cast<unsigned long long>(
                    service.AppliedSequence(city).value()),
                service.Query(city, [](const sns::StreamHandle& handle) {
                         return handle.ExactFitness();
                       }).value());
  }

  // Stop the shards; handles outlive the runtime, queries keep working.
  service.Shutdown();
  std::printf("shut down cleanly after %lld tuples\n",
              static_cast<long long>(
                  offsets[0] + offsets[1] + offsets[2] + offsets[3]));
  return 0;
}
