// Traffic monitoring scenario (the paper's motivating example): a New York
// Taxi-like stream of (source, destination) trips at second resolution,
// decomposed continuously with an hourly window. Demonstrates:
//   - interpreting CP components as recurring traffic patterns (top
//     source/destination zones per component),
//   - watching component activity shift over the day via the newest
//     time-mode row,
//   - per-event updating at microsecond latencies.
//
// Build & run:  ./build/examples/traffic_monitor

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/continuous_cpd.h"
#include "data/datasets.h"

namespace {

// Top-k row indices of one factor column (largest loadings).
std::vector<int> TopIndices(const sns::Matrix& factor, int64_t component,
                            int k) {
  std::vector<int> order(static_cast<size_t>(factor.rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return factor(a, component) > factor(b, component);
  });
  order.resize(static_cast<size_t>(k));
  return order;
}

}  // namespace

int main() {
  // Taxi preset, lightly scaled: 265x265 zones, T = 1 hour, W = 10.
  sns::DatasetSpec spec = sns::NewYorkTaxiPreset(0.5);
  spec.engine.rank = 8;  // Few components keeps the tour readable.
  auto stream = sns::GenerateSyntheticStream(spec.stream);
  if (!stream.ok()) return 1;

  auto engine =
      sns::ContinuousCpd::Create(spec.stream.mode_dims, spec.engine);
  if (!engine.ok()) {
    std::printf("%s\n", engine.status().ToString().c_str());
    return 1;
  }
  sns::ContinuousCpd cpd = std::move(engine).value();

  const int64_t warmup_end = spec.WarmupEndTime();
  size_t i = 0;
  const auto& tuples = stream.value().tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  std::printf("monitoring %lld zones x %lld zones, window = %d hours\n",
              static_cast<long long>(spec.stream.mode_dims[0]),
              static_cast<long long>(spec.stream.mode_dims[1]),
              spec.engine.window_size);

  // Stream the live phase; report hourly.
  int64_t next_hour = warmup_end + spec.engine.period;
  for (; i < tuples.size(); ++i) {
    cpd.ProcessTuple(tuples[i]);
    if (tuples[i].time < next_hour) continue;
    next_hour += spec.engine.period;

    // Component activity now = newest time-mode row.
    const sns::Matrix& time_factor =
        cpd.model().factor(cpd.model().num_modes() - 1);
    const int64_t newest = time_factor.rows() - 1;
    int64_t hot = 0;
    for (int64_t r = 1; r < time_factor.cols(); ++r) {
      if (time_factor(newest, r) > time_factor(newest, hot)) hot = r;
    }
    std::printf("hour %2lld | fitness %.3f | %.1f us/update | hottest "
                "component #%lld (activity %.2f)\n",
                static_cast<long long>((tuples[i].time - warmup_end) /
                                       spec.engine.period),
                cpd.Fitness(), cpd.MeanUpdateMicros(),
                static_cast<long long>(hot), time_factor(newest, hot));
  }

  // Interpret the two most active components as traffic patterns.
  std::printf("\nrecurring patterns (top zones by factor loading):\n");
  for (int64_t r = 0; r < std::min<int64_t>(2, cpd.model().rank()); ++r) {
    std::printf("  component %lld: sources {", static_cast<long long>(r));
    for (int zone : TopIndices(cpd.model().factor(0), r, 3)) {
      std::printf(" %d", zone);
    }
    std::printf(" } -> destinations {");
    for (int zone : TopIndices(cpd.model().factor(1), r, 3)) {
      std::printf(" %d", zone);
    }
    std::printf(" }\n");
  }
  return 0;
}
