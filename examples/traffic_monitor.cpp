// Traffic monitoring scenario (the paper's motivating example): a New York
// Taxi-like stream of (source, destination) trips at second resolution,
// decomposed continuously with an hourly window. Demonstrates the facade's
// typed query surface:
//   - ComponentActivity: which recurring traffic pattern dominates now,
//   - TopKForComponent: the source/destination zones a pattern is made of,
//   - TopK: the currently hottest zones across all patterns,
//   - per-event updating at microsecond latencies.
//
// Build & run:  ./build/example_traffic_monitor

#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "slicenstitch.h"

int main() {
  // Taxi preset, lightly scaled: 265x265 zones, T = 1 hour, W = 10.
  sns::DatasetSpec spec = sns::NewYorkTaxiPreset(0.5);
  spec.engine.rank = 8;  // Few components keeps the tour readable.
  auto stream = sns::GenerateSyntheticStream(spec.stream);
  if (!stream.ok()) return 1;

  sns::SnsService service;
  auto created =
      service.CreateStream("taxi", spec.stream.mode_dims, spec.engine);
  if (!created.ok()) {
    std::printf("%s\n", created.status().ToString().c_str());
    return 1;
  }
  sns::StreamHandle& taxi = *created.value();

  const int64_t warmup_end = spec.WarmupEndTime();
  const std::span<const sns::Tuple> tuples(stream.value().tuples());
  size_t i =
      static_cast<size_t>(stream.value().CountTuplesThrough(warmup_end));
  if (!taxi.Warmup(tuples.subspan(0, i)).ok() || !taxi.Initialize().ok()) {
    return 1;
  }
  std::printf("monitoring %lld zones x %lld zones, window = %d hours\n",
              static_cast<long long>(spec.stream.mode_dims[0]),
              static_cast<long long>(spec.stream.mode_dims[1]),
              taxi.window_size());

  // Stream the live phase in hourly batches; report per hour.
  int64_t next_hour = warmup_end + taxi.period();
  while (i < tuples.size()) {
    size_t end = i;
    while (end < tuples.size() && tuples[end].time < next_hour) ++end;
    if (!taxi.Ingest(tuples.subspan(i, end - i)).ok()) return 1;
    i = end;
    if (i == tuples.size()) break;
    next_hour += taxi.period();

    // Hottest component now = argmax of the current activity vector.
    const auto activity = taxi.ComponentActivity();
    if (!activity.ok()) return 1;
    int64_t hot = 0;
    for (size_t r = 1; r < activity.value().size(); ++r) {
      if (activity.value()[r] > activity.value()[static_cast<size_t>(hot)]) {
        hot = static_cast<int64_t>(r);
      }
    }
    std::printf("hour %2lld | fitness~%.3f | %.1f us/update | hottest "
                "component #%lld (activity %.2f)\n",
                static_cast<long long>(
                    (taxi.Stats().last_time - warmup_end) / taxi.period()),
                taxi.RunningFitness(), taxi.Stats().mean_update_micros,
                static_cast<long long>(hot),
                activity.value()[static_cast<size_t>(hot)]);
  }

  // Interpret the two most active components as traffic patterns. (Note:
  // materialize .value() into a local before iterating — a range-for over
  // `TopK(...).value()` would iterate a reference into the destroyed
  // StatusOr temporary.)
  std::printf("\nrecurring patterns (top zones by factor loading):\n");
  for (int64_t r = 0; r < std::min<int64_t>(2, taxi.rank()); ++r) {
    std::printf("  component %lld: sources {", static_cast<long long>(r));
    const std::vector<sns::TopEntry> sources =
        taxi.TopKForComponent(/*mode=*/0, r, 3).value();
    for (const sns::TopEntry& zone : sources) {
      std::printf(" %lld", static_cast<long long>(zone.index));
    }
    std::printf(" } -> destinations {");
    const std::vector<sns::TopEntry> destinations =
        taxi.TopKForComponent(/*mode=*/1, r, 3).value();
    for (const sns::TopEntry& zone : destinations) {
      std::printf(" %lld", static_cast<long long>(zone.index));
    }
    std::printf(" }\n");
  }

  // The activity-weighted hot list across all patterns.
  std::printf("hottest source zones now:");
  const std::vector<sns::TopEntry> hottest = taxi.TopK(/*mode=*/0, 5).value();
  for (const sns::TopEntry& zone : hottest) {
    std::printf(" %lld(%.1f)", static_cast<long long>(zone.index),
                zone.score);
  }
  std::printf("\n");
  return 0;
}
