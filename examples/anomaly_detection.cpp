// Real-time anomaly detection (the paper's §VI-G application): spikes
// injected into a crime-report-like stream are flagged the instant they
// arrive, by z-scoring each event's reconstruction error against the
// continuously maintained CP model.
//
// Build & run:  ./build/examples/anomaly_detection

#include <cmath>
#include <cstdio>

#include "apps/anomaly_detection.h"
#include "core/continuous_cpd.h"
#include "data/datasets.h"

int main() {
  // Chicago-Crime-like stream: (community, crime type) at hour resolution.
  sns::DatasetSpec spec = sns::ChicagoCrimePreset(0.5);
  auto clean = sns::GenerateSyntheticStream(spec.stream);
  if (!clean.ok()) return 1;

  // Inject 15 spikes of magnitude 12 at random times and cells.
  sns::Rng rng(99);
  std::vector<sns::InjectedAnomaly> truth;
  sns::DataStream stream = sns::InjectAnomalies(
      clean.value(), /*count=*/15, /*magnitude=*/12.0,
      spec.WarmupEndTime() + spec.engine.period, rng, &truth);
  std::printf("injected %zu spikes into %lld events\n", truth.size(),
              static_cast<long long>(stream.size()));

  auto engine = sns::ContinuousCpd::Create(stream.mode_dims(), spec.engine);
  if (!engine.ok()) return 1;
  sns::ContinuousCpd cpd = std::move(engine).value();

  // Score every arrival before the factors absorb it.
  std::vector<sns::Detection> detections;
  sns::RunningZScore stats;
  cpd.SetEventObserver([&](const sns::WindowDelta& delta,
                           const sns::KruskalModel& model,
                           const sns::SparseTensor& window) {
    if (delta.kind != sns::EventKind::kArrival || delta.cells.empty()) return;
    const sns::ModeIndex& cell = delta.cells[0].index;
    const double error = std::fabs(window.Get(cell) - model.Evaluate(cell));
    const double z = stats.ScoreAndUpdate(error);
    detections.push_back({delta.time, delta.tuple.index, z, false});
    if (z > 10.0) {
      std::printf("  !! t=%lld cell=%s value=%.0f z=%.1f\n",
                  static_cast<long long>(delta.time),
                  delta.tuple.index.ToString().c_str(), delta.tuple.value, z);
    }
  });

  const int64_t warmup_end = spec.WarmupEndTime();
  size_t i = 0;
  for (; i < stream.tuples().size() &&
         stream.tuples()[i].time <= warmup_end;
       ++i) {
    cpd.IngestOnly(stream.tuples()[i]);
  }
  cpd.InitializeWithAls();
  for (; i < stream.tuples().size(); ++i) {
    cpd.ProcessTuple(stream.tuples()[i]);
  }

  sns::LabelDetections(truth, /*time_slack=*/0, &detections);
  std::printf("\nprecision@15 = %.2f (|scored| = %zu events)\n",
              sns::PrecisionAtTopK(detections, 15), detections.size());
  std::printf("detection latency = computation only: %.3f ms/event\n",
              cpd.MeanUpdateMicros() * 1e-3);
  return 0;
}
