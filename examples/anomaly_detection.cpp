// Real-time anomaly detection (the paper's §VI-G application): spikes
// injected into a crime-report-like stream are flagged the instant they
// arrive, by z-scoring each event's reconstruction error against the
// continuously maintained CP model. Implemented as an EventSink attached to
// the stream — the facade's multi-subscriber replacement for the old
// single-observer hook; the sink reads observed/predicted values through
// the typed StreamEvent instead of touching the window tensor directly.
//
// Build & run:  ./build/example_anomaly_detection

#include <cstdio>
#include <span>
#include <vector>

#include "slicenstitch.h"

namespace {

// Scores every arrival before the factors absorb it.
class SpikeDetector : public sns::EventSink {
 public:
  void OnStreamEvent(const sns::StreamEvent& event) override {
    if (event.kind() != sns::EventKind::kArrival || event.empty()) return;
    const double z = stats_.ScoreAndUpdate(event.AbsError());
    detections_.push_back({event.time(), event.tuple().index, z, false});
    if (z > 10.0) {
      std::printf("  !! t=%lld cell=%s value=%.0f z=%.1f\n",
                  static_cast<long long>(event.time()),
                  event.tuple().index.ToString().c_str(),
                  event.tuple().value, z);
    }
  }

  std::vector<sns::Detection>& detections() { return detections_; }

 private:
  sns::RunningZScore stats_;
  std::vector<sns::Detection> detections_;
};

}  // namespace

int main() {
  // Chicago-Crime-like stream: (community, crime type) at hour resolution.
  sns::DatasetSpec spec = sns::ChicagoCrimePreset(0.5);
  auto clean = sns::GenerateSyntheticStream(spec.stream);
  if (!clean.ok()) return 1;

  // Inject 15 spikes of magnitude 12 at random times and cells.
  sns::Rng rng(99);
  std::vector<sns::InjectedAnomaly> truth;
  sns::DataStream stream = sns::InjectAnomalies(
      clean.value(), /*count=*/15, /*magnitude=*/12.0,
      spec.WarmupEndTime() + spec.engine.period, rng, &truth);
  std::printf("injected %zu spikes into %lld events\n", truth.size(),
              static_cast<long long>(stream.size()));

  sns::SnsService service;
  auto created =
      service.CreateStream("crime", stream.mode_dims(), spec.engine);
  if (!created.ok()) return 1;
  sns::StreamHandle& crime = *created.value();

  SpikeDetector detector;
  if (!crime.AddSink(&detector).ok()) return 1;

  const int64_t warmup_end = spec.WarmupEndTime();
  const std::span<const sns::Tuple> tuples(stream.tuples());
  const size_t i = static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  if (!crime.Warmup(tuples.subspan(0, i)).ok() || !crime.Initialize().ok()) {
    return 1;
  }
  if (!crime.Ingest(tuples.subspan(i)).ok()) return 1;

  sns::LabelDetections(truth, /*time_slack=*/0, &detector.detections());
  std::printf("\nprecision@15 = %.2f (|scored| = %zu events)\n",
              sns::PrecisionAtTopK(detector.detections(), 15),
              detector.detections().size());
  std::printf("detection latency = computation only: %.3f ms/event\n",
              crime.Stats().mean_update_micros * 1e-3);
  return 0;
}
