// Real-time anomaly detection (the paper's §VI-G application): spikes
// injected into a crime-report-like stream are flagged the instant they
// arrive. The detector runs the engine in robust mode (X = L + S) and
// scores each arrival by the mass the soft threshold diverts into the
// sparse outlier structure S — zero for events the low-rank model
// explains, so no z-normalization is needed and the factors never absorb
// the spikes. Implemented as an EventSink attached to the stream; set
// SNS_ANOMALY_ABS_ERROR=1 to fall back to the legacy detector that
// z-scores each event's reconstruction error instead.
//
// Build & run:  ./build/example_anomaly_detection

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "slicenstitch.h"

namespace {

// Scores every arrival before the factors absorb it.
class SpikeDetector : public sns::EventSink {
 public:
  explicit SpikeDetector(bool use_abs_error)
      : use_abs_error_(use_abs_error) {}

  void OnStreamEvent(const sns::StreamEvent& event) override {
    if (event.kind() != sns::EventKind::kArrival || event.empty()) return;
    const double score = use_abs_error_
                             ? stats_.ScoreAndUpdate(event.AbsError())
                             : std::fabs(event.OutlierCapture());
    detections_.push_back({event.time(), event.tuple().index, score, false});
    if (score > (use_abs_error_ ? 10.0 : 0.0)) {
      std::printf("  !! t=%lld cell=%s value=%.0f %s=%.1f\n",
                  static_cast<long long>(event.time()),
                  event.tuple().index.ToString().c_str(),
                  event.tuple().value, use_abs_error_ ? "z" : "captured",
                  score);
    }
  }

  std::vector<sns::Detection>& detections() { return detections_; }

 private:
  bool use_abs_error_;
  sns::RunningZScore stats_;
  std::vector<sns::Detection> detections_;
};

}  // namespace

int main() {
  // Chicago-Crime-like stream: (community, crime type) at hour resolution.
  sns::DatasetSpec spec = sns::ChicagoCrimePreset(0.5);
  auto clean = sns::GenerateSyntheticStream(spec.stream);
  if (!clean.ok()) return 1;

  // Inject 15 spikes of magnitude 12 at random times and cells.
  sns::Rng rng(99);
  std::vector<sns::InjectedAnomaly> truth;
  sns::DataStream stream = sns::InjectAnomalies(
      clean.value(), /*count=*/15, /*magnitude=*/12.0,
      spec.WarmupEndTime() + spec.engine.period, rng, &truth);
  std::printf("injected %zu spikes into %lld events\n", truth.size(),
              static_cast<long long>(stream.size()));

  const bool use_abs_error = std::getenv("SNS_ANOMALY_ABS_ERROR") != nullptr;
  sns::ContinuousCpdOptions engine = spec.engine;
  if (!use_abs_error) {
    // Capture residual mass beyond ~half the spike magnitude into S; the
    // normal per-event residual on this stream stays well below it.
    engine.robust.enabled = true;
    engine.robust.threshold = 6.0;
    engine.robust.decay = 0.5;
    engine.robust.capacity = 4096;
  }

  sns::SnsService service;
  auto created = service.CreateStream("crime", stream.mode_dims(), engine);
  if (!created.ok()) return 1;
  sns::StreamHandle& crime = *created.value();

  SpikeDetector detector(use_abs_error);
  if (!crime.AddSink(&detector).ok()) return 1;

  const int64_t warmup_end = spec.WarmupEndTime();
  const std::span<const sns::Tuple> tuples(stream.tuples());
  const size_t i = static_cast<size_t>(stream.CountTuplesThrough(warmup_end));
  if (!crime.Warmup(tuples.subspan(0, i)).ok() || !crime.Initialize().ok()) {
    return 1;
  }
  if (!crime.Ingest(tuples.subspan(i)).ok()) return 1;

  sns::LabelDetections(truth, /*time_slack=*/0, &detector.detections());
  std::printf("\nprecision@15 = %.2f (|scored| = %zu events)\n",
              sns::PrecisionAtTopK(detector.detections(), 15),
              detector.detections().size());
  std::printf("detection latency = computation only: %.3f ms/event\n",
              crime.Stats().mean_update_micros * 1e-3);
  if (!use_abs_error) {
    const sns::StreamStats stats = crime.Stats();
    std::printf("outlier structure S: %lld cells, |S| = %.1f, "
                "%llu captures\n",
                static_cast<long long>(stats.outlier_cells),
                stats.outlier_magnitude,
                static_cast<unsigned long long>(stats.outlier_captures));
    auto hot = crime.OutlierActivity(/*mode=*/0, /*k=*/3);
    if (hot.ok()) {
      for (const sns::TopEntry& entry : hot.value()) {
        std::printf("  hottest community %lld: |S| mass %.1f\n",
                    static_cast<long long>(entry.index), entry.score);
      }
    }
  }
  return 0;
}
