// Quickstart: continuous CP decomposition of a small synthetic traffic
// stream through the service facade in ~40 lines of API use.
//
//   1. register a named stream (its categorical modes + engine options),
//   2. warm the window up with one batch, initialize factors with ALS,
//   3. ingest live tuples in batches — factors refresh on every event,
//   4. read the running fitness / stats whenever you like.
//
// Build & run:  ./build/example_quickstart

#include <cstdio>
#include <span>

#include "slicenstitch.h"

int main() {
  // A (source x destination) traffic stream: 50x40 stations, ~20k events
  // across 60k seconds.
  sns::SyntheticStreamConfig stream_config;
  stream_config.mode_dims = {50, 40};
  stream_config.num_events = 20000;
  stream_config.time_span = 60000;
  stream_config.diurnal_period = 10000;
  stream_config.seed = 1;
  auto stream = sns::GenerateSyntheticStream(stream_config);
  if (!stream.ok()) {
    std::printf("stream generation failed: %s\n",
                stream.status().ToString().c_str());
    return 1;
  }

  // Continuous CPD: rank 10, window of W=10 tensor units of T=1000s each,
  // using the paper's recommended SNS+RND updater.
  sns::ContinuousCpdOptions options;
  options.rank = 10;
  options.window_size = 10;
  options.period = 1000;
  options.variant = sns::SnsVariant::kRndPlus;
  options.sample_threshold = 20;  // theta
  options.clip_bound = 1000.0;    // eta

  sns::SnsService service;
  auto created = service.CreateStream("traffic", {50, 40}, options);
  if (!created.ok()) {
    std::printf("stream creation failed: %s\n",
                created.status().ToString().c_str());
    return 1;
  }
  sns::StreamHandle& traffic = *created.value();

  // Warm-up: fill one window span in a single batch, then fit initial
  // factors with ALS.
  const int64_t warmup_end = options.window_size * options.period;
  const std::span<const sns::Tuple> tuples(stream.value().tuples());
  size_t i =
      static_cast<size_t>(stream.value().CountTuplesThrough(warmup_end));
  if (!traffic.Warmup(tuples.subspan(0, i)).ok() ||
      !traffic.Initialize().ok()) {
    return 1;
  }
  std::printf("initialized on %lld non-zeros, fitness %.3f\n",
              static_cast<long long>(traffic.Stats().window_nnz),
              traffic.ExactFitness());

  // Live phase: ingest in report-interval batches; every tuple still
  // updates the factor matrices instantly. RunningFitness is the O(R²)
  // estimate — no window rescan per report.
  const int64_t report_every = 10 * options.period;
  int64_t next_report = warmup_end + report_every;
  while (i < tuples.size()) {
    size_t end = i;
    while (end < tuples.size() && tuples[end].time <= next_report) ++end;
    if (!traffic.Ingest(tuples.subspan(i, end - i)).ok()) return 1;
    i = end;
    if (i == tuples.size()) break;
    const sns::StreamStats stats = traffic.Stats();
    std::printf("t=%6lld  window nnz=%5lld  fitness~%.3f  (%.1f us/update)\n",
                static_cast<long long>(stats.last_time),
                static_cast<long long>(stats.window_nnz),
                traffic.RunningFitness(), stats.mean_update_micros);
    next_report += report_every;
  }

  const sns::StreamStats stats = traffic.Stats();
  std::printf(
      "done: %lld events processed, mean update latency %.1f us, final "
      "fitness %.3f (running estimate %.3f)\n",
      static_cast<long long>(stats.events_processed),
      stats.mean_update_micros, traffic.ExactFitness(),
      traffic.RunningFitness());
  return 0;
}
