// Quickstart: continuous CP decomposition of a small synthetic traffic
// stream in ~40 lines of API use.
//
//   1. describe the stream's categorical modes,
//   2. warm the window up and initialize factors with ALS,
//   3. process live tuples — factors refresh on every single event,
//   4. read fitness / factors whenever you like.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/continuous_cpd.h"
#include "data/synthetic.h"

int main() {
  // A (source x destination) traffic stream: 50x40 stations, ~20k events
  // across 60k seconds.
  sns::SyntheticStreamConfig stream_config;
  stream_config.mode_dims = {50, 40};
  stream_config.num_events = 20000;
  stream_config.time_span = 60000;
  stream_config.diurnal_period = 10000;
  stream_config.seed = 1;
  auto stream = sns::GenerateSyntheticStream(stream_config);
  if (!stream.ok()) {
    std::printf("stream generation failed: %s\n",
                stream.status().ToString().c_str());
    return 1;
  }

  // Continuous CPD: rank 10, window of W=10 tensor units of T=1000s each,
  // using the paper's recommended SNS+RND updater.
  sns::ContinuousCpdOptions options;
  options.rank = 10;
  options.window_size = 10;
  options.period = 1000;
  options.variant = sns::SnsVariant::kRndPlus;
  options.sample_threshold = 20;  // theta
  options.clip_bound = 1000.0;    // eta
  auto engine = sns::ContinuousCpd::Create({50, 40}, options);
  if (!engine.ok()) {
    std::printf("engine creation failed: %s\n",
                engine.status().ToString().c_str());
    return 1;
  }
  sns::ContinuousCpd cpd = std::move(engine).value();

  // Warm-up: fill one window span, then fit initial factors with ALS.
  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  const auto& tuples = stream.value().tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  std::printf("initialized on %lld non-zeros, fitness %.3f\n",
              static_cast<long long>(cpd.window().nnz()), cpd.Fitness());

  // Live phase: every tuple updates the factor matrices instantly.
  int64_t next_report = warmup_end + 10 * options.period;
  for (; i < tuples.size(); ++i) {
    cpd.ProcessTuple(tuples[i]);
    if (tuples[i].time >= next_report) {
      std::printf("t=%6lld  window nnz=%5lld  fitness=%.3f  (%.1f us/update)\n",
                  static_cast<long long>(tuples[i].time),
                  static_cast<long long>(cpd.window().nnz()), cpd.Fitness(),
                  cpd.MeanUpdateMicros());
      next_report += 10 * options.period;
    }
  }

  std::printf(
      "done: %lld events processed, mean update latency %.1f us, final "
      "fitness %.3f\n",
      static_cast<long long>(cpd.events_processed()), cpd.MeanUpdateMicros(),
      cpd.Fitness());
  return 0;
}
