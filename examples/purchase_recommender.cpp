// Purchase-history recommendation: a 4-mode stream (user, product, color,
// quantity) — the paper's Definition 1 example — decomposed continuously.
// The factor matrices give live user/product embeddings; recommendations
// are products whose embedding aligns with the user's, weighted by current
// component activity. Demonstrates a 4-mode tensor and embedding use.
//
// Build & run:  ./build/examples/purchase_recommender

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/continuous_cpd.h"
#include "data/synthetic.h"

namespace {

// Scores product p for user u: Σ_r user_r · product_r · activity_r.
double Score(const sns::KruskalModel& model, int user, int product,
             const std::vector<double>& activity) {
  double score = 0.0;
  for (int64_t r = 0; r < model.rank(); ++r) {
    score += model.factor(0)(user, r) * model.factor(1)(product, r) *
             activity[static_cast<size_t>(r)];
  }
  return score;
}

}  // namespace

int main() {
  // 300 users x 120 products x 8 colors; ~25k purchases over 30 days of
  // minutes, with quantities 1-3.
  sns::SyntheticStreamConfig config;
  config.mode_dims = {300, 120, 8};
  config.num_events = 25000;
  config.time_span = 30 * 1440;
  config.latent_rank = 6;  // Six "taste" communities.
  config.noise_fraction = 0.1;
  config.diurnal_period = 1440;
  config.value_min = 1.0;
  config.value_max = 3.0;
  config.seed = 7;
  auto stream = sns::GenerateSyntheticStream(config);
  if (!stream.ok()) return 1;

  sns::ContinuousCpdOptions options;
  options.rank = 6;
  options.window_size = 7;      // One-week sliding window...
  options.period = 1440;        // ...of daily units.
  options.variant = sns::SnsVariant::kRndPlus;
  options.sample_threshold = 30;
  auto engine = sns::ContinuousCpd::Create(config.mode_dims, options);
  if (!engine.ok()) return 1;
  sns::ContinuousCpd cpd = std::move(engine).value();

  const int64_t warmup_end = options.window_size * options.period;
  size_t i = 0;
  const auto& tuples = stream.value().tuples();
  for (; i < tuples.size() && tuples[i].time <= warmup_end; ++i) {
    cpd.IngestOnly(tuples[i]);
  }
  cpd.InitializeWithAls();
  std::printf("week-one model ready: fitness %.3f on %lld purchases\n",
              cpd.Fitness(), static_cast<long long>(cpd.window().nnz()));

  // Stream the remaining purchases; the model follows taste drift daily.
  for (; i < tuples.size(); ++i) cpd.ProcessTuple(tuples[i]);
  std::printf("processed %lld events at %.1f us/update, final fitness %.3f\n",
              static_cast<long long>(cpd.events_processed()),
              cpd.MeanUpdateMicros(), cpd.Fitness());

  // Current component activity = newest time-mode row.
  const sns::KruskalModel& model = cpd.model();
  const sns::Matrix& time_factor = model.factor(model.num_modes() - 1);
  std::vector<double> activity(static_cast<size_t>(model.rank()));
  for (int64_t r = 0; r < model.rank(); ++r) {
    activity[static_cast<size_t>(r)] = time_factor(time_factor.rows() - 1, r);
  }

  // Top-3 recommendations for a few users.
  for (int user : {0, 17, 123}) {
    std::vector<std::pair<double, int>> ranking;
    for (int product = 0; product < 120; ++product) {
      ranking.emplace_back(Score(model, user, product, activity), product);
    }
    std::sort(ranking.rbegin(), ranking.rend());
    std::printf("user %3d -> recommend products: %d (%.2f), %d (%.2f), %d "
                "(%.2f)\n",
                user, ranking[0].second, ranking[0].first, ranking[1].second,
                ranking[1].first, ranking[2].second, ranking[2].first);
  }
  return 0;
}
