// Purchase-history recommendation: a 4-mode stream (user, product, color,
// quantity) — the paper's Definition 1 example — decomposed continuously.
// FactorRow hands out live user/product embeddings; recommendations are
// products whose embedding aligns with the user's, weighted by the current
// component activity. Demonstrates a 4-mode tensor and the facade's
// embedding queries.
//
// Build & run:  ./build/example_purchase_recommender

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>
#include <vector>

#include "slicenstitch.h"

namespace {

// Scores product p for user u: Σ_r user_r · product_r · activity_r.
double Score(const sns::FactorRowView& user, const sns::FactorRowView& product,
             const std::vector<double>& activity) {
  double score = 0.0;
  for (int64_t r = 0; r < user.rank(); ++r) {
    score += user[r] * product[r] * activity[static_cast<size_t>(r)];
  }
  return score;
}

}  // namespace

int main() {
  // 300 users x 120 products x 8 colors; ~25k purchases over 30 days of
  // minutes, with quantities 1-3.
  sns::SyntheticStreamConfig config;
  config.mode_dims = {300, 120, 8};
  config.num_events = 25000;
  config.time_span = 30 * 1440;
  config.latent_rank = 6;  // Six "taste" communities.
  config.noise_fraction = 0.1;
  config.diurnal_period = 1440;
  config.value_min = 1.0;
  config.value_max = 3.0;
  config.seed = 7;
  auto stream = sns::GenerateSyntheticStream(config);
  if (!stream.ok()) return 1;

  sns::ContinuousCpdOptions options;
  options.rank = 6;
  options.window_size = 7;      // One-week sliding window...
  options.period = 1440;        // ...of daily units.
  options.variant = sns::SnsVariant::kRndPlus;
  options.sample_threshold = 30;

  sns::SnsService service;
  auto created =
      service.CreateStream("purchases", config.mode_dims, options);
  if (!created.ok()) return 1;
  sns::StreamHandle& purchases = *created.value();

  const int64_t warmup_end = options.window_size * options.period;
  const std::span<const sns::Tuple> tuples(stream.value().tuples());
  const size_t i =
      static_cast<size_t>(stream.value().CountTuplesThrough(warmup_end));
  if (!purchases.Warmup(tuples.subspan(0, i)).ok() ||
      !purchases.Initialize().ok()) {
    return 1;
  }
  std::printf("week-one model ready: fitness %.3f on %lld purchases\n",
              purchases.ExactFitness(),
              static_cast<long long>(purchases.Stats().window_nnz));

  // Stream the remaining purchases in one batch; the model follows taste
  // drift daily.
  if (!purchases.Ingest(tuples.subspan(i)).ok()) return 1;
  const sns::StreamStats stats = purchases.Stats();
  std::printf("processed %lld events at %.1f us/update, final fitness %.3f\n",
              static_cast<long long>(stats.events_processed),
              stats.mean_update_micros, purchases.ExactFitness());

  // Current component activity weights the embedding match.
  const std::vector<double> activity =
      purchases.ComponentActivity().value();

  // Top-3 recommendations for a few users.
  for (int user : {0, 17, 123}) {
    const sns::FactorRowView user_row =
        purchases.FactorRow(/*mode=*/0, user).value();
    std::vector<std::pair<double, int>> ranking;
    for (int product = 0; product < 120; ++product) {
      const sns::FactorRowView product_row =
          purchases.FactorRow(/*mode=*/1, product).value();
      ranking.emplace_back(Score(user_row, product_row, activity), product);
    }
    std::sort(ranking.rbegin(), ranking.rend());
    std::printf("user %3d -> recommend products: %d (%.2f), %d (%.2f), %d "
                "(%.2f)\n",
                user, ranking[0].second, ranking[0].first, ranking[1].second,
                ranking[1].first, ranking[2].second, ranking[2].first);
  }
  return 0;
}
