// Durable stream scenario: a service that survives being killed mid-ingest.
//
// The process keeps its complete state under one directory:
//   <state_dir>/checkpoint.bin — latest checkpoint, written by
//                                SnsService::CheckpointToFile (tmp + fsync +
//                                rename, so a crash never leaves a torn one),
//   <state_dir>/wal/           — write-ahead event journal.
//
// On startup it recovers from the checkpoint + journal suffix if present,
// re-attaches the journal, and continues the SAME deterministic feed from
// where the recovered sequence token says it stopped — so kill -9 at any
// point, restarted, converges to the identical final state and prints DONE.
// tools/crash_recovery_smoke.sh drives exactly that (and CI runs it).
//
// Build & run:  ./build/example_durable_service /tmp/sns_state
// Flags:        --tuples=N (live tuples, default 400)
//               --throttle-us=N (sleep per tuple, default 0; the smoke test
//                 throttles so a mid-run kill lands mid-ingest)
//               --checkpoint-every=N (live tuples per checkpoint, default 64)

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "slicenstitch.h"

namespace {

constexpr int64_t kWarmupTuples = 60;

// Deterministic feed: tuple i is a pure function of i (splitmix-style hash),
// so a restarted process can skip straight to any position.
sns::Tuple MakeTuple(int64_t i) {
  uint64_t h = static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ull;
  h ^= h >> 33;
  h *= 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 29;
  sns::Tuple tuple;
  tuple.index = sns::ModeIndex({static_cast<int32_t>(h % 8),
                                static_cast<int32_t>((h / 8) % 6)});
  tuple.value = 1.0 + static_cast<double>((h >> 16) % 5);
  tuple.time = i;  // One stream-time unit per tuple.
  return tuple;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string state_dir;
  int64_t live_tuples = 400;
  int64_t throttle_us = 0;
  int64_t checkpoint_every = 64;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tuples=", 9) == 0) {
      live_tuples = std::atoll(arg + 9);
    } else if (std::strncmp(arg, "--throttle-us=", 14) == 0) {
      throttle_us = std::atoll(arg + 14);
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      checkpoint_every = std::atoll(arg + 19);
    } else if (state_dir.empty() && arg[0] != '-') {
      state_dir = arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return 2;
    }
  }
  if (state_dir.empty() || live_tuples < 1 || checkpoint_every < 1) {
    std::fprintf(stderr,
                 "usage: %s <state_dir> [--tuples=N] [--throttle-us=N] "
                 "[--checkpoint-every=N]\n",
                 argv[0]);
    return 2;
  }
  const std::string checkpoint_path = state_dir + "/checkpoint.bin";
  const std::string journal_dir = state_dir + "/wal";

  sns::ServiceOptions runtime;
  runtime.shards = 1;
  sns::SnsService service(runtime);

  sns::ContinuousCpdOptions engine;
  engine.rank = 6;
  engine.window_size = 4;
  engine.period = 5;
  engine.variant = sns::SnsVariant::kRndPlus;
  engine.seed = 7;

  // Sequence-token accounting of the fixed protocol below: token 1 =
  // Warmup, token 2 = Initialize, token 2+k = k-th live tuple.
  uint64_t applied = 0;
  if (FileExists(checkpoint_path)) {
    auto source = sns::serial::FileSource::Open(checkpoint_path);
    if (!source.ok()) {
      std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
      return 1;
    }
    auto report =
        sns::durability::RecoverStream(service, source.value(), journal_dir);
    if (!report.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    applied = report.value().last_sequence;
    std::printf("Recovered stream 'feed' at sequence %llu "
                "(checkpoint %llu + %llu journal records%s)\n",
                static_cast<unsigned long long>(applied),
                static_cast<unsigned long long>(
                    report.value().checkpoint_sequence),
                static_cast<unsigned long long>(
                    report.value().records_replayed),
                report.value().torn_tail ? ", torn tail discarded" : "");
  } else {
    // Fresh start: a journal left behind by a run killed before its first
    // checkpoint would restart token numbering and corrupt future replays.
    std::error_code ec;
    std::filesystem::remove_all(journal_dir, ec);
    auto created = service.CreateStream("feed", {8, 6}, engine);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
  }

  // (Re-)attach the journal; a fresh segment continues the token sequence.
  if (const sns::Status status = service.EnableJournal("feed", journal_dir);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  if (applied < 1) {
    std::vector<sns::Tuple> warmup;
    for (int64_t i = 0; i < kWarmupTuples; ++i) warmup.push_back(MakeTuple(i));
    if (!service.Warmup("feed", warmup).ok()) return 1;
  }
  if (applied < 2) {
    if (!service.Initialize("feed").ok()) return 1;
    if (!service.CheckpointToFile("feed", checkpoint_path).ok()) return 1;
  }

  // With a checkpoint on disk and the journal attached, arm the self-healing
  // layer: a failed journal append quarantines the stream and rebuilds it
  // from checkpoint + journal suffix instead of poisoning it permanently.
  if (const sns::Status status =
          service.EnableAutoRecovery("feed", checkpoint_path);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const int64_t already_ingested =
      applied > 2 ? static_cast<int64_t>(applied - 2) : 0;
  for (int64_t k = already_ingested; k < live_tuples; ++k) {
    const sns::Tuple tuple = MakeTuple(kWarmupTuples + k);
    if (const sns::Status status = service.Ingest("feed", tuple);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if ((k + 1) % checkpoint_every == 0) {
      if (!service.CheckpointToFile("feed", checkpoint_path).ok()) return 1;
    }
    if (throttle_us > 0) usleep(static_cast<useconds_t>(throttle_us));
  }

  auto fitness = service.RunningFitness("feed");
  if (!fitness.ok()) return 1;
  std::printf("DONE tuples=%lld fitness=%.6f\n",
              static_cast<long long>(live_tuples), fitness.value());
  service.Shutdown();
  return 0;
}
