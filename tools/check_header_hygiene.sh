#!/usr/bin/env bash
# Header-hygiene check: every public header must compile standalone — as the
# only include of a translation unit — with -Wall -Wextra -Werror, so the
# facade surface never silently depends on include order or transitive
# includes leaking from another header.
#
# Usage: tools/check_header_hygiene.sh [compiler]   (default: $CXX or g++)

set -euo pipefail
cd "$(dirname "$0")/.."

compiler="${1:-${CXX:-g++}}"

# The public surface: the umbrella header, the api/ facade layer (including
# the stream-health / self-healing surface), the runtime layer it exposes
# (tickets, mailboxes, shards), the durability layer (checkpoints, journals,
# serialization primitives), the fault-injection surface, the telemetry
# layer (counters, histograms, registry, timers, JSON export), and the
# kernel dispatch surface (CPU probe, codelet table contract, float32
# mirrors), and the generalized-loss layer (loss catalog, GCP row update,
# outlier store, reference objectives).
headers=(
  src/slicenstitch.h
  src/api/service_options.h
  src/api/sns_service.h
  src/api/stream_event.h
  src/api/stream_handle.h
  src/api/stream_health.h
  src/common/cpu_features.h
  src/common/crc32.h
  src/common/failpoint.h
  src/common/serial.h
  src/durability/checkpoint.h
  src/durability/journal.h
  src/linalg/codelets/codelet_tables.h
  src/linalg/matrix32.h
  src/losses/gcp_row_update.h
  src/losses/loss_function.h
  src/losses/outlier_store.h
  src/losses/reference_objective.h
  src/runtime/mailbox.h
  src/runtime/sharded_executor.h
  src/runtime/task.h
  src/runtime/ticket.h
  src/runtime/worker_shard.h
  src/telemetry/counters.h
  src/telemetry/histogram.h
  src/telemetry/json_exporter.h
  src/telemetry/metrics_registry.h
  src/telemetry/scoped_timer.h
)

status=0
for header in "${headers[@]}"; do
  if [ ! -f "$header" ]; then
    echo "MISSING  $header"
    status=1
    continue
  fi
  if "$compiler" -std=c++20 -fsyntax-only -Wall -Wextra -Werror \
      -I src -x c++ "$header"; then
    echo "OK       $header ($compiler)"
  else
    echo "FAILED   $header ($compiler)"
    status=1
  fi
done
exit $status
