#!/usr/bin/env bash
# Crash-recovery smoke test: kill example_durable_service mid-ingest with
# SIGKILL, restart it, and verify it (a) recovers from the checkpoint +
# journal and (b) runs the deterministic feed to completion. Exercises the
# full durability loop — checkpoint envelope, write-ahead journal, torn-tail
# handling — against a real process death, not an in-process simulation.
#
# Usage: tools/crash_recovery_smoke.sh [path-to-example_durable_service]
#        (default: ./build/example_durable_service)
#
# The restart phase runs under a hard timeout so a wedged binary
# (deadlocked shard, unkillable recovery loop) fails the smoke test
# instead of hanging CI until the job-level timeout reaps it with no
# diagnostics. (The kill phase needs no timeout: the unconditional
# SIGKILL already bounds it.)

set -euo pipefail
cd "$(dirname "$0")/.."

# Seconds before a phase is declared wedged. The full feed takes ~4 s
# throttled and well under 1 s unthrottled; 120 s is pure headroom.
phase_timeout=120

binary="${1:-./build/example_durable_service}"
if [ ! -x "$binary" ]; then
  echo "missing binary: $binary (build example_durable_service first)" >&2
  exit 1
fi

state_dir="$(mktemp -d)"
trap 'rm -rf "$state_dir"' EXIT

# Phase 1: run throttled so the kill lands mid-ingest, well past the first
# checkpoint (64 live tuples at ~2 ms each) but far from done (2000 tuples
# at 2 ms each is ~4 s; the kill fires after ~1 s, around tuple 400-500).
# (No timeout wrapper here: $victim must be the binary's own pid so the
# SIGKILL below lands on it, and the unconditional kill already bounds
# this phase at ~1 s.)
"$binary" "$state_dir" --tuples=2000 --throttle-us=2000 &
victim=$!
sleep 1
kill -9 "$victim" 2>/dev/null || {
  echo "process finished before the kill; raise --tuples" >&2
  exit 1
}
wait "$victim" 2>/dev/null || true

if [ ! -f "$state_dir/checkpoint.bin" ]; then
  echo "no checkpoint was written before the kill" >&2
  exit 1
fi

# Phase 2: restart. It must report recovery and finish the same feed,
# within the hard timeout — a restart that wedges in recovery is a failure,
# not a hang.
log="$state_dir/restart.log"
timeout -k 10 "$phase_timeout" "$binary" "$state_dir" --tuples=2000 \
  | tee "$log"

grep -q "^Recovered stream 'feed'" "$log" || {
  echo "restart did not recover from the checkpoint/journal" >&2
  exit 1
}
grep -q "^DONE tuples=2000" "$log" || {
  echo "restart did not run the feed to completion" >&2
  exit 1
}
echo "crash-recovery smoke: OK"
