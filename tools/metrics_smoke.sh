#!/usr/bin/env bash
# Telemetry smoke test: run example_metrics_observability with the periodic
# JSON-lines exporter pointed at a scratch file, then validate the capture —
# every line must parse as a standalone JSON object, carry the expected
# top-level fields, and report internally consistent latency percentiles
# (p99 >= p50, count > 0 once traffic flowed). Exercises the full telemetry
# loop — per-shard recording, snapshot merge, exporter thread, file format —
# against a real process, not an in-process unit test.
#
# Usage: tools/metrics_smoke.sh [path-to-example_metrics_observability]
#        (default: ./build/example_metrics_observability)

set -euo pipefail
cd "$(dirname "$0")/.."

phase_timeout=120

binary="${1:-./build/example_metrics_observability}"
if [ ! -x "$binary" ]; then
  echo "missing binary: $binary (build example_metrics_observability first)" >&2
  exit 1
fi

state_dir="$(mktemp -d)"
trap 'rm -rf "$state_dir"' EXIT
capture="$state_dir/metrics.jsonl"

echo "== running $binary =="
timeout "$phase_timeout" "$binary" "$capture"

if [ ! -s "$capture" ]; then
  echo "FAILED: exporter wrote no JSON lines to $capture" >&2
  exit 1
fi

echo "== validating $capture =="
python3 - "$capture" <<'PY'
import json
import sys

path = sys.argv[1]
lines = 0
saw_traffic = False
with open(path) as f:
    for raw in f:
        raw = raw.strip()
        if not raw:
            continue
        lines += 1
        snap = json.loads(raw)  # Every line is a standalone JSON object.
        for field in ("ts_ms", "ingest_latency_ns", "apply_ns",
                      "shards", "streams"):
            if field not in snap:
                sys.exit(f"line {lines}: missing field {field!r}")
        for name in ("ingest_latency_ns", "apply_ns"):
            hist = snap[name]
            for field in ("count", "min", "max", "mean", "p50", "p90",
                          "p99", "p999"):
                if field not in hist:
                    sys.exit(f"line {lines}: {name} missing {field!r}")
            if hist["count"] > 0:
                saw_traffic = True
                if not (hist["min"] <= hist["p50"] <= hist["p90"]
                        <= hist["p99"] <= hist["p999"] <= hist["max"]):
                    sys.exit(f"line {lines}: {name} percentiles not "
                             f"monotone: {hist}")
        if not isinstance(snap["shards"], list) or not snap["shards"]:
            sys.exit(f"line {lines}: empty shards array")
        if not isinstance(snap["streams"], list):
            sys.exit(f"line {lines}: streams is not an array")

if lines == 0:
    sys.exit("capture file holds no JSON lines")
if not saw_traffic:
    sys.exit("no line ever reported a non-empty latency histogram")
print(f"OK: {lines} JSON lines, percentiles monotone (p99 >= p50)")
PY

echo "PASS: telemetry smoke"
